#include "train/trainer.h"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <limits>

#include "autograd/ops.h"
#include "health/health.h"
#include "metrics/metrics.h"
#include "nn/serialize.h"
#include "optim/optimizer.h"
#include "par/par.h"
#include "tensor/tensor_ops.h"
#include "train/checkpoint.h"
#include "util/stopwatch.h"

namespace elda {
namespace train {
namespace {

std::vector<float> LabelsFor(const std::vector<data::PreparedSample>& prepared,
                             const std::vector<int64_t>& indices,
                             data::Task task) {
  std::vector<float> labels;
  labels.reserve(indices.size());
  for (int64_t i : indices) {
    labels.push_back(task == data::Task::kMortality
                         ? prepared[i].mortality_label
                         : prepared[i].los_gt7_label);
  }
  return labels;
}

bool FileExists(const std::string& path) {
  return std::ifstream(path).good();
}

// Injected fault: corrupts the first available gradient with a NaN, the way
// a numerically blown-up backward pass would.
void PoisonGradients(const std::vector<ag::Variable>& params) {
  for (const ag::Variable& p : params) {
    if (!p.has_grad()) continue;
    // Gradients are logically mutable state owned by the optimizer loop.
    const_cast<float*>(p.grad().data())[0] =
        std::numeric_limits<float>::quiet_NaN();
    return;
  }
}

// In-memory state captured at each epoch boundary, enough to deterministically
// replay the epoch after a rollback (the checkpoint file holds the same state
// plus bookkeeping for cross-process resume).
struct RunSnapshot {
  std::vector<Tensor> params;
  optim::AdamState adam;
  RngState rng;
  std::vector<int64_t> order;
};

}  // namespace

PredictResult Trainer::Predict(
    const SequenceModel* model,
    const std::vector<data::PreparedSample>& prepared,
    const std::vector<int64_t>& indices, data::Task task,
    const InferenceOptions& options) {
  PredictResult result;
  result.labels = LabelsFor(prepared, indices, task);
  result.scores.assign(indices.size(), 0.0f);
  if (indices.empty()) return result;

  const int64_t batch_size = std::max<int64_t>(1, options.batch_size);
  const int64_t count = static_cast<int64_t>(indices.size());
  const int64_t num_batches = (count + batch_size - 1) / batch_size;

  // Minibatch composition depends only on batch_size, and every minibatch
  // writes a disjoint score range, so the parallel path is bitwise
  // identical to running the batches back-to-back.
  auto run_batch = [&](int64_t b, nn::ForwardContext* ctx) {
    const int64_t start = b * batch_size;
    const int64_t end = std::min(count, start + batch_size);
    std::vector<int64_t> chunk(indices.begin() + start, indices.begin() + end);
    data::Batch batch = data::MakeBatch(prepared, chunk, task);
    Tensor probs = Sigmoid(model->Forward(batch, ctx).value());
    for (int64_t i = 0; i < probs.size(); ++i) {
      result.scores[static_cast<size_t>(start + i)] = probs[i];
    }
  };
  // A capture sink is shared last-writer-wins state, so capturing forces
  // the serial path regardless of options.parallel.
  if (options.parallel && options.capture == nullptr) {
    par::ParallelFor(
        0, num_batches, /*grain=*/1,
        [&](int64_t b0, int64_t b1) {
          // Grad mode is a thread-local flag, so the scope must be opened
          // on each worker, not around the ParallelFor call.
          ag::NoGradScope no_grad;
          nn::ForwardContext ctx;  // inference mode, one per worker range
          for (int64_t b = b0; b < b1; ++b) run_batch(b, &ctx);
        },
        options.num_threads);
  } else {
    ag::NoGradScope no_grad;
    nn::ForwardContext ctx;
    ctx.capture = options.capture;
    for (int64_t b = 0; b < num_batches; ++b) run_batch(b, &ctx);
  }
  return result;
}

EvalResult Trainer::Evaluate(
    const SequenceModel* model,
    const std::vector<data::PreparedSample>& prepared,
    const std::vector<int64_t>& indices, data::Task task,
    const InferenceOptions& options) {
  const PredictResult predicted =
      Predict(model, prepared, indices, task, options);
  EvalResult result;
  result.bce = metrics::BceLoss(predicted.scores, predicted.labels);
  result.auc_roc = metrics::AucRoc(predicted.scores, predicted.labels);
  result.auc_pr = metrics::AucPr(predicted.scores, predicted.labels);
  return result;
}

TrainResult Trainer::Train(SequenceModel* model,
                           const std::vector<data::PreparedSample>& prepared,
                           const data::SplitIndices& split,
                           data::Task task) const {
  // Pin the thread count for the whole run (kernels + eval batching);
  // num_threads == 0 leaves the global --threads / ELDA_THREADS setting.
  par::ScopedNumThreads scoped_threads(config_.num_threads);
  TrainResult result;
  result.num_parameters = model->NumParameters();
  if (split.train.empty()) {
    result.status = health::TrainStatus::kEmptyTrainSplit;
    result.status_message = "train split is empty; nothing to train on";
    return result;
  }
  std::vector<ag::Variable> params = model->Parameters();
  optim::Adam adam(params, config_.learning_rate);
  Rng rng(config_.seed);
  data::Batcher batcher(&prepared, split.train, config_.batch_size, task,
                        &rng);
  health::HealthMonitor monitor(config_.health);
  health::FaultInjector* inject = health::GlobalFaultInjector();
  const bool checkpointing =
      config_.checkpoint_every > 0 && !config_.checkpoint_path.empty();

  double best_val_auc_pr = -1.0;
  std::vector<Tensor> best_params;
  int64_t epochs_without_improvement = 0;
  double total_batch_seconds = 0.0;
  int64_t total_batches = 0;
  int64_t start_epoch = 0;
  int64_t global_step = 0;  // optimizer steps, for deterministic faults

  if (config_.resume && !config_.checkpoint_path.empty() &&
      FileExists(config_.checkpoint_path)) {
    TrainCheckpoint ckpt;
    std::string err;
    if (!LoadTrainCheckpoint(config_.checkpoint_path, &ckpt, &err) ||
        !nn::DecodeParameters(model, ckpt.params_blob, &err)) {
      result.status = health::TrainStatus::kCheckpointError;
      result.status_message = err;
      return result;
    }
    std::vector<int64_t> expected = split.train, stored = ckpt.batch_order;
    std::sort(expected.begin(), expected.end());
    std::sort(stored.begin(), stored.end());
    if (expected != stored) {
      result.status = health::TrainStatus::kCheckpointError;
      result.status_message = config_.checkpoint_path +
                              " was written for a different train split";
      return result;
    }
    adam.RestoreState(ckpt.adam);
    rng.RestoreState(ckpt.rng);
    batcher.RestoreOrder(ckpt.batch_order);
    start_epoch = ckpt.next_epoch;
    best_val_auc_pr = ckpt.best_val_auc_pr;
    best_params = std::move(ckpt.best_params);
    epochs_without_improvement = ckpt.epochs_without_improvement;
    total_batch_seconds = ckpt.total_batch_seconds;
    total_batches = ckpt.total_batches;
    global_step = ckpt.total_batches;
    result.val = ckpt.best_val;
    result.best_epoch = ckpt.best_epoch;
    result.epochs_run = ckpt.epochs_run;
    result.recoveries = ckpt.recoveries;
    result.skipped_batches = ckpt.skipped_batches;
    if (epochs_without_improvement > config_.patience) {
      // Early stopping had already triggered when this checkpoint was
      // written; skip straight to finalization so the resumed run matches
      // the uninterrupted one.
      start_epoch = config_.max_epochs;
    }
    if (config_.verbose) {
      std::cerr << model->name() << " resumed from "
                << config_.checkpoint_path << " at epoch " << start_epoch
                << "\n";
    }
  }

  auto take_snapshot = [&]() {
    RunSnapshot snap;
    snap.params.reserve(params.size());
    for (const ag::Variable& p : params) {
      snap.params.push_back(p.value().Clone());
    }
    snap.adam = adam.ExportState();
    snap.rng = rng.SaveState();
    snap.order = batcher.order();
    return snap;
  };
  auto restore_snapshot = [&](const RunSnapshot& snap) {
    for (size_t i = 0; i < params.size(); ++i) {
      *params[i].mutable_value() = snap.params[i].Clone();
    }
    adam.RestoreState(snap.adam);
    rng.RestoreState(snap.rng);
    batcher.RestoreOrder(snap.order);
  };
  auto write_checkpoint = [&](int64_t next_epoch) {
    TrainCheckpoint ckpt;
    ckpt.next_epoch = next_epoch;
    ckpt.epochs_run = result.epochs_run;
    ckpt.best_epoch = result.best_epoch;
    ckpt.epochs_without_improvement = epochs_without_improvement;
    ckpt.total_batches = total_batches;
    ckpt.recoveries = result.recoveries;
    ckpt.skipped_batches = result.skipped_batches;
    ckpt.best_val_auc_pr = best_val_auc_pr;
    ckpt.best_val = result.val;
    ckpt.total_batch_seconds = total_batch_seconds;
    ckpt.params_blob = nn::EncodeParameters(*model);
    ckpt.adam = adam.ExportState();
    ckpt.rng = rng.SaveState();
    ckpt.batch_order = batcher.order();
    ckpt.best_params.reserve(best_params.size());
    for (const Tensor& t : best_params) {
      ckpt.best_params.push_back(t.Clone());
    }
    std::string err;
    if (!SaveTrainCheckpoint(config_.checkpoint_path, ckpt, &err)) {
      ++result.checkpoint_write_failures;
      std::cerr << model->name() << ": checkpoint write failed (" << err
                << "); training continues\n";
    }
  };

  // Training-mode forward context. Dropout draws come from the trainer's
  // checkpoint-saved RNG so interrupted-and-resumed runs stay bitwise
  // identical to uninterrupted ones.
  nn::ForwardContext train_ctx;
  train_ctx.training = true;
  train_ctx.rng = &rng;

  bool aborted = false;
  for (int64_t epoch = start_epoch;
       epoch < config_.max_epochs && !aborted; ++epoch) {
    // Last-good state for rollback recovery; refreshed each epoch boundary
    // (before the shuffle, so a replayed epoch draws the same batches).
    const RunSnapshot boundary = take_snapshot();
    double epoch_loss = 0.0;
    int64_t epoch_batches = 0;
    bool epoch_complete = false;
    while (!epoch_complete && !aborted) {
      batcher.StartEpoch();
      epoch_loss = 0.0;
      epoch_batches = 0;
      bool rolled_back = false;
      data::Batch batch;
      while (batcher.Next(&batch)) {
        Stopwatch sw;
        adam.ZeroGrad();
        ag::Variable logits = model->Forward(batch, &train_ctx);
        ag::Variable loss = ag::BceWithLogits(logits, batch.y);
        loss.Backward();
        if (inject->ConsumePoisonGrad(global_step)) {
          PoisonGradients(params);
        }
        // The returned norm doubles as a fused NaN/Inf scan over the
        // post-clip gradients (non-finite norms pass through unscaled).
        const float grad_norm =
            config_.clip_norm > 0.0f
                ? optim::ClipGradNorm(params, config_.clip_norm)
                : optim::GlobalGradNorm(params);
        const double loss_value = loss.value()[0];
        ++global_step;
        const health::StepVerdict verdict =
            monitor.Check(loss_value, grad_norm);
        if (verdict != health::StepVerdict::kHealthy) {
          if (config_.verbose) {
            std::cerr << model->name() << " epoch " << epoch << " step "
                      << global_step - 1 << ": "
                      << health::StepVerdictName(verdict) << " (loss "
                      << loss_value << ", grad norm " << grad_norm << ")\n";
          }
          if (config_.health.policy == health::RecoveryPolicy::kSkipBatch &&
              result.skipped_batches < config_.health.max_skipped_batches) {
            ++result.skipped_batches;
            continue;  // drop this batch's update
          }
          if (config_.health.policy == health::RecoveryPolicy::kRollback &&
              result.recoveries < config_.health.max_rollbacks) {
            ++result.recoveries;
            const float halved_lr = adam.lr() * 0.5f;
            restore_snapshot(boundary);
            adam.set_lr(halved_lr);
            monitor.Reset();
            rolled_back = true;
            break;  // replay the epoch from the boundary snapshot
          }
          // kAbort, or the skip/rollback budget is exhausted.
          aborted = true;
          result.status_message =
              std::string("unhealthy step (") +
              health::StepVerdictName(verdict) + ") at step " +
              std::to_string(global_step - 1) + "; policy " +
              (config_.health.policy == health::RecoveryPolicy::kAbort
                   ? "abort"
                   : "recovery budget exhausted");
          break;
        }
        adam.Step();
        monitor.Observe(loss_value);
        total_batch_seconds += sw.Seconds();
        ++total_batches;
        epoch_loss += loss_value;
        ++epoch_batches;
      }
      epoch_complete = !rolled_back;
    }
    if (aborted) {
      result.epochs_run = epoch + 1;
      break;
    }
    result.epochs_run = epoch + 1;

    const EvalResult val = Evaluate(model, prepared, split.val, task);
    if (config_.verbose) {
      std::cerr << model->name() << " epoch " << epoch << " train_bce="
                << (epoch_batches > 0 ? epoch_loss / epoch_batches : 0.0)
                << " val_auc_pr=" << val.auc_pr << "\n";
    }
    bool stop = false;
    if (val.auc_pr > best_val_auc_pr) {
      best_val_auc_pr = val.auc_pr;
      result.val = val;
      result.best_epoch = epoch;
      epochs_without_improvement = 0;
      best_params.clear();
      for (const ag::Variable& p : params) {
        best_params.push_back(p.value().Clone());
      }
    } else if (++epochs_without_improvement > config_.patience) {
      stop = true;
    }
    if (checkpointing && (epoch + 1) % config_.checkpoint_every == 0) {
      write_checkpoint(epoch + 1);
    }
    if (stop) break;
  }

  // Restore the best-validation parameters before the test evaluation.
  if (!best_params.empty()) {
    for (size_t i = 0; i < params.size(); ++i) {
      *params[i].mutable_value() = best_params[i];
    }
  }
  result.test = Evaluate(model, prepared, split.test, task);
  result.status = aborted ? health::TrainStatus::kAborted
                  : (result.recoveries > 0 || result.skipped_batches > 0)
                      ? health::TrainStatus::kRecovered
                      : health::TrainStatus::kOk;
  result.train_seconds_per_batch =
      total_batches > 0 ? total_batch_seconds / total_batches : 0.0;

  // Single-sample prediction latency (Table III's "Prediction (ms)"),
  // measured on the graph-free inference path like Predict().
  if (!split.test.empty()) {
    ag::NoGradScope no_grad;
    const int64_t reps = 20;
    Stopwatch sw;
    for (int64_t r = 0; r < reps; ++r) {
      data::Batch one =
          data::MakeBatch(prepared, {split.test[0]}, task);
      model->Forward(one);
    }
    result.predict_ms_per_sample = sw.Milliseconds() / reps;
  }
  return result;
}

const EvalResult& MultiTaskEvalResult::ForTask(const std::string& task) const {
  for (size_t i = 0; i < tasks.size(); ++i) {
    if (tasks[i] == task) return per_task[i];
  }
  ELDA_CHECK(false) << "no head evaluated for task " << task;
  return per_task.front();  // unreachable
}

MultiTaskEvalResult Trainer::EvaluateMultiTask(
    const SequenceModel* model, const MultiHead* heads,
    const std::vector<data::PreparedSample>& prepared,
    const std::vector<int64_t>& indices, data::Task task,
    const InferenceOptions& options) {
  ELDA_CHECK(model != nullptr && heads != nullptr && heads->size() > 0);
  const int64_t num_heads = heads->size();
  MultiTaskEvalResult result;
  result.tasks.reserve(num_heads);
  for (int64_t h = 0; h < num_heads; ++h) {
    result.tasks.push_back(heads->head(h).task_name());
  }
  // Flattened (score, label, valid) accumulators per head, across batches.
  std::vector<std::vector<float>> scores(num_heads), labels(num_heads);
  std::vector<std::vector<uint8_t>> valid(num_heads);

  par::ScopedNumThreads scoped_threads(options.num_threads);
  ag::NoGradScope no_grad;
  nn::ForwardContext ctx;
  ctx.capture = options.capture;
  const bool want_steps = heads->wants_steps();
  const int64_t batch_size = std::max<int64_t>(1, options.batch_size);
  const int64_t count = static_cast<int64_t>(indices.size());
  for (int64_t start = 0; start < count; start += batch_size) {
    const int64_t end = std::min(count, start + batch_size);
    std::vector<int64_t> chunk(indices.begin() + start, indices.begin() + end);
    data::Batch batch = data::MakeBatch(prepared, chunk, task);
    Encoding enc = model->Encode(batch, &ctx, want_steps);
    for (int64_t h = 0; h < num_heads; ++h) {
      const TaskHead& head = heads->head(h);
      Tensor probs = Sigmoid(head.Logits(*model, enc, &ctx).value());
      head.Collect(*model, probs, batch, &scores[h], &labels[h], &valid[h]);
    }
  }
  result.per_task.resize(num_heads);
  for (int64_t h = 0; h < num_heads; ++h) {
    EvalResult& er = result.per_task[h];
    er.bce = metrics::BceLoss(scores[h], labels[h], valid[h]);
    er.auc_roc = metrics::AucRoc(scores[h], labels[h], valid[h]);
    er.auc_pr = metrics::AucPr(scores[h], labels[h], valid[h]);
    result.mean_auc_pr += er.auc_pr / num_heads;
  }
  return result;
}

MultiTaskTrainResult Trainer::TrainMultiTask(
    SequenceModel* model, MultiHead* heads,
    const std::vector<data::PreparedSample>& prepared,
    const data::SplitIndices& split, data::Task task) const {
  ELDA_CHECK(model != nullptr && heads != nullptr && heads->size() > 0);
  par::ScopedNumThreads scoped_threads(config_.num_threads);
  // The optimizer, checkpoint blob, and best-params snapshots cover the
  // trunk first, then each head in Add order.
  ModelWithHead bundle(model, heads);
  MultiTaskTrainResult result;
  result.num_parameters = bundle.NumParameters();
  if (split.train.empty()) {
    result.status = health::TrainStatus::kEmptyTrainSplit;
    result.status_message = "train split is empty; nothing to train on";
    return result;
  }
  std::vector<ag::Variable> params = bundle.Parameters();
  optim::Adam adam(params, config_.learning_rate);
  Rng rng(config_.seed);
  data::Batcher batcher(&prepared, split.train, config_.batch_size, task,
                        &rng);
  health::HealthMonitor monitor(config_.health);
  health::FaultInjector* inject = health::GlobalFaultInjector();
  const bool checkpointing =
      config_.checkpoint_every > 0 && !config_.checkpoint_path.empty();
  const bool want_steps = heads->wants_steps();

  double best_val_auc_pr = -1.0;  // mean across heads
  std::vector<Tensor> best_params;
  int64_t epochs_without_improvement = 0;
  double total_batch_seconds = 0.0;
  int64_t total_batches = 0;
  int64_t start_epoch = 0;
  int64_t global_step = 0;

  if (config_.resume && !config_.checkpoint_path.empty() &&
      FileExists(config_.checkpoint_path)) {
    TrainCheckpoint ckpt;
    std::string err;
    if (!LoadTrainCheckpoint(config_.checkpoint_path, &ckpt, &err) ||
        !nn::DecodeParameters(&bundle, ckpt.params_blob, &err)) {
      result.status = health::TrainStatus::kCheckpointError;
      result.status_message = err;
      return result;
    }
    std::vector<int64_t> expected = split.train, stored = ckpt.batch_order;
    std::sort(expected.begin(), expected.end());
    std::sort(stored.begin(), stored.end());
    if (expected != stored) {
      result.status = health::TrainStatus::kCheckpointError;
      result.status_message = config_.checkpoint_path +
                              " was written for a different train split";
      return result;
    }
    adam.RestoreState(ckpt.adam);
    rng.RestoreState(ckpt.rng);
    batcher.RestoreOrder(ckpt.batch_order);
    start_epoch = ckpt.next_epoch;
    best_val_auc_pr = ckpt.best_val_auc_pr;
    best_params = std::move(ckpt.best_params);
    epochs_without_improvement = ckpt.epochs_without_improvement;
    total_batch_seconds = ckpt.total_batch_seconds;
    total_batches = ckpt.total_batches;
    global_step = ckpt.total_batches;
    result.best_epoch = ckpt.best_epoch;
    result.epochs_run = ckpt.epochs_run;
    result.recoveries = ckpt.recoveries;
    result.skipped_batches = ckpt.skipped_batches;
    if (epochs_without_improvement > config_.patience) {
      start_epoch = config_.max_epochs;
    }
    if (config_.verbose) {
      std::cerr << model->name() << " resumed (multi-task) from "
                << config_.checkpoint_path << " at epoch " << start_epoch
                << "\n";
    }
  }

  auto take_snapshot = [&]() {
    RunSnapshot snap;
    snap.params.reserve(params.size());
    for (const ag::Variable& p : params) {
      snap.params.push_back(p.value().Clone());
    }
    snap.adam = adam.ExportState();
    snap.rng = rng.SaveState();
    snap.order = batcher.order();
    return snap;
  };
  auto restore_snapshot = [&](const RunSnapshot& snap) {
    for (size_t i = 0; i < params.size(); ++i) {
      *params[i].mutable_value() = snap.params[i].Clone();
    }
    adam.RestoreState(snap.adam);
    rng.RestoreState(snap.rng);
    batcher.RestoreOrder(snap.order);
  };
  auto write_checkpoint = [&](int64_t next_epoch) {
    TrainCheckpoint ckpt;
    ckpt.next_epoch = next_epoch;
    ckpt.epochs_run = result.epochs_run;
    ckpt.best_epoch = result.best_epoch;
    ckpt.epochs_without_improvement = epochs_without_improvement;
    ckpt.total_batches = total_batches;
    ckpt.recoveries = result.recoveries;
    ckpt.skipped_batches = result.skipped_batches;
    ckpt.best_val_auc_pr = best_val_auc_pr;
    ckpt.total_batch_seconds = total_batch_seconds;
    ckpt.params_blob = nn::EncodeParameters(bundle);
    ckpt.adam = adam.ExportState();
    ckpt.rng = rng.SaveState();
    ckpt.batch_order = batcher.order();
    ckpt.best_params.reserve(best_params.size());
    for (const Tensor& t : best_params) {
      ckpt.best_params.push_back(t.Clone());
    }
    std::string err;
    if (!SaveTrainCheckpoint(config_.checkpoint_path, ckpt, &err)) {
      ++result.checkpoint_write_failures;
      std::cerr << model->name() << ": checkpoint write failed (" << err
                << "); training continues\n";
    }
  };

  nn::ForwardContext train_ctx;
  train_ctx.training = true;
  train_ctx.rng = &rng;

  bool aborted = false;
  for (int64_t epoch = start_epoch;
       epoch < config_.max_epochs && !aborted; ++epoch) {
    const RunSnapshot boundary = take_snapshot();
    double epoch_loss = 0.0;
    int64_t epoch_batches = 0;
    bool epoch_complete = false;
    while (!epoch_complete && !aborted) {
      batcher.StartEpoch();
      epoch_loss = 0.0;
      epoch_batches = 0;
      bool rolled_back = false;
      data::Batch batch;
      while (batcher.Next(&batch)) {
        Stopwatch sw;
        adam.ZeroGrad();
        Encoding enc = model->Encode(batch, &train_ctx, want_steps);
        ag::Variable loss = heads->JointLoss(*model, enc, batch, &train_ctx);
        loss.Backward();
        if (inject->ConsumePoisonGrad(global_step)) {
          PoisonGradients(params);
        }
        const float grad_norm =
            config_.clip_norm > 0.0f
                ? optim::ClipGradNorm(params, config_.clip_norm)
                : optim::GlobalGradNorm(params);
        const double loss_value = loss.value()[0];
        ++global_step;
        const health::StepVerdict verdict =
            monitor.Check(loss_value, grad_norm);
        if (verdict != health::StepVerdict::kHealthy) {
          if (config_.verbose) {
            std::cerr << model->name() << " epoch " << epoch << " step "
                      << global_step - 1 << ": "
                      << health::StepVerdictName(verdict) << " (loss "
                      << loss_value << ", grad norm " << grad_norm << ")\n";
          }
          if (config_.health.policy == health::RecoveryPolicy::kSkipBatch &&
              result.skipped_batches < config_.health.max_skipped_batches) {
            ++result.skipped_batches;
            continue;
          }
          if (config_.health.policy == health::RecoveryPolicy::kRollback &&
              result.recoveries < config_.health.max_rollbacks) {
            ++result.recoveries;
            const float halved_lr = adam.lr() * 0.5f;
            restore_snapshot(boundary);
            adam.set_lr(halved_lr);
            monitor.Reset();
            rolled_back = true;
            break;
          }
          aborted = true;
          result.status_message =
              std::string("unhealthy step (") +
              health::StepVerdictName(verdict) + ") at step " +
              std::to_string(global_step - 1) + "; policy " +
              (config_.health.policy == health::RecoveryPolicy::kAbort
                   ? "abort"
                   : "recovery budget exhausted");
          break;
        }
        adam.Step();
        monitor.Observe(loss_value);
        total_batch_seconds += sw.Seconds();
        ++total_batches;
        epoch_loss += loss_value;
        ++epoch_batches;
      }
      epoch_complete = !rolled_back;
    }
    if (aborted) {
      result.epochs_run = epoch + 1;
      break;
    }
    result.epochs_run = epoch + 1;

    const MultiTaskEvalResult val =
        EvaluateMultiTask(model, heads, prepared, split.val, task);
    if (config_.verbose) {
      std::cerr << model->name() << " epoch " << epoch << " train_joint="
                << (epoch_batches > 0 ? epoch_loss / epoch_batches : 0.0)
                << " val_mean_auc_pr=" << val.mean_auc_pr << "\n";
    }
    bool stop = false;
    if (val.mean_auc_pr > best_val_auc_pr) {
      best_val_auc_pr = val.mean_auc_pr;
      result.best_epoch = epoch;
      epochs_without_improvement = 0;
      best_params.clear();
      for (const ag::Variable& p : params) {
        best_params.push_back(p.value().Clone());
      }
    } else if (++epochs_without_improvement > config_.patience) {
      stop = true;
    }
    if (checkpointing && (epoch + 1) % config_.checkpoint_every == 0) {
      write_checkpoint(epoch + 1);
    }
    if (stop) break;
  }

  if (!best_params.empty()) {
    for (size_t i = 0; i < params.size(); ++i) {
      *params[i].mutable_value() = best_params[i];
    }
  }
  // Val/test metrics are (re)computed on the restored best parameters rather
  // than carried through the checkpoint, so interrupted-and-resumed runs
  // report bitwise-identical numbers to uninterrupted ones.
  if (!aborted) {
    result.val = EvaluateMultiTask(model, heads, prepared, split.val, task);
    result.test = EvaluateMultiTask(model, heads, prepared, split.test, task);
  }
  result.status = aborted ? health::TrainStatus::kAborted
                  : (result.recoveries > 0 || result.skipped_batches > 0)
                      ? health::TrainStatus::kRecovered
                      : health::TrainStatus::kOk;
  result.train_seconds_per_batch =
      total_batches > 0 ? total_batch_seconds / total_batches : 0.0;
  return result;
}

PredictResult Trainer::PredictSource(const SequenceModel* model,
                                     data::BatchSource* source,
                                     const InferenceOptions& options) {
  ELDA_CHECK(source != nullptr);
  par::ScopedNumThreads scoped_threads(options.num_threads);
  PredictResult result;
  ag::NoGradScope no_grad;
  nn::ForwardContext ctx;
  ctx.capture = options.capture;
  source->StartEpoch();
  data::Batch batch;
  while (source->Next(&batch)) {
    Tensor probs = Sigmoid(model->Forward(batch, &ctx).value());
    for (int64_t i = 0; i < probs.size(); ++i) {
      result.scores.push_back(probs[i]);
      result.labels.push_back(batch.y[i]);
    }
  }
  return result;
}

EvalResult Trainer::EvaluateSource(const SequenceModel* model,
                                   data::BatchSource* source,
                                   const InferenceOptions& options) {
  const PredictResult predicted = PredictSource(model, source, options);
  EvalResult result;
  result.bce = metrics::BceLoss(predicted.scores, predicted.labels);
  result.auc_roc = metrics::AucRoc(predicted.scores, predicted.labels);
  result.auc_pr = metrics::AucPr(predicted.scores, predicted.labels);
  return result;
}

TrainResult Trainer::TrainStreamed(SequenceModel* model,
                                   data::BatchSource* train,
                                   data::BatchSource* val,
                                   data::BatchSource* test) const {
  ELDA_CHECK(train != nullptr);
  par::ScopedNumThreads scoped_threads(config_.num_threads);
  TrainResult result;
  result.num_parameters = model->NumParameters();
  if (train->NumBatchesPerEpoch() == 0) {
    result.status = health::TrainStatus::kEmptyTrainSplit;
    result.status_message = "train source is empty; nothing to train on";
    return result;
  }
  std::vector<ag::Variable> params = model->Parameters();
  optim::Adam adam(params, config_.learning_rate);
  Rng rng(config_.seed);  // dropout stream; the source owns its shuffle
  health::HealthMonitor monitor(config_.health);
  health::FaultInjector* inject = health::GlobalFaultInjector();
  const bool checkpointing =
      config_.checkpoint_every > 0 && !config_.checkpoint_path.empty();

  double best_val_auc_pr = -1.0;
  std::vector<Tensor> best_params;
  int64_t epochs_without_improvement = 0;
  double total_batch_seconds = 0.0;
  int64_t total_batches = 0;
  int64_t start_epoch = 0;
  int64_t global_step = 0;

  if (config_.resume && !config_.checkpoint_path.empty() &&
      FileExists(config_.checkpoint_path)) {
    TrainCheckpoint ckpt;
    std::string err;
    if (!LoadTrainCheckpoint(config_.checkpoint_path, &ckpt, &err) ||
        !nn::DecodeParameters(model, ckpt.params_blob, &err)) {
      result.status = health::TrainStatus::kCheckpointError;
      result.status_message = err;
      return result;
    }
    if (!train->RestoreState(ckpt.source_state)) {
      result.status = health::TrainStatus::kCheckpointError;
      result.status_message = config_.checkpoint_path +
                              " holds a source state this train stream "
                              "cannot restore";
      return result;
    }
    adam.RestoreState(ckpt.adam);
    rng.RestoreState(ckpt.rng);
    start_epoch = ckpt.next_epoch;
    best_val_auc_pr = ckpt.best_val_auc_pr;
    best_params = std::move(ckpt.best_params);
    epochs_without_improvement = ckpt.epochs_without_improvement;
    total_batch_seconds = ckpt.total_batch_seconds;
    total_batches = ckpt.total_batches;
    global_step = ckpt.total_batches;
    result.val = ckpt.best_val;
    result.best_epoch = ckpt.best_epoch;
    result.epochs_run = ckpt.epochs_run;
    result.recoveries = ckpt.recoveries;
    result.skipped_batches = ckpt.skipped_batches;
    if (epochs_without_improvement > config_.patience) {
      start_epoch = config_.max_epochs;
    }
    if (config_.verbose) {
      std::cerr << model->name() << " resumed (streamed) from "
                << config_.checkpoint_path << " at epoch " << start_epoch
                << "\n";
    }
  }

  // Snapshots capture the source's exported cursor alongside the usual
  // params/adam/rng, so a rollback replays the epoch's exact batch stream.
  struct StreamSnapshot {
    std::vector<Tensor> params;
    optim::AdamState adam;
    RngState rng;
    std::string source_state;
  };
  auto take_snapshot = [&]() {
    StreamSnapshot snap;
    snap.params.reserve(params.size());
    for (const ag::Variable& p : params) {
      snap.params.push_back(p.value().Clone());
    }
    snap.adam = adam.ExportState();
    snap.rng = rng.SaveState();
    snap.source_state = train->ExportState();
    return snap;
  };
  auto restore_snapshot = [&](const StreamSnapshot& snap) {
    for (size_t i = 0; i < params.size(); ++i) {
      *params[i].mutable_value() = snap.params[i].Clone();
    }
    adam.RestoreState(snap.adam);
    rng.RestoreState(snap.rng);
    ELDA_CHECK(train->RestoreState(snap.source_state));
  };
  auto write_checkpoint = [&](int64_t next_epoch) {
    TrainCheckpoint ckpt;
    ckpt.next_epoch = next_epoch;
    ckpt.epochs_run = result.epochs_run;
    ckpt.best_epoch = result.best_epoch;
    ckpt.epochs_without_improvement = epochs_without_improvement;
    ckpt.total_batches = total_batches;
    ckpt.recoveries = result.recoveries;
    ckpt.skipped_batches = result.skipped_batches;
    ckpt.best_val_auc_pr = best_val_auc_pr;
    ckpt.best_val = result.val;
    ckpt.total_batch_seconds = total_batch_seconds;
    ckpt.params_blob = nn::EncodeParameters(*model);
    ckpt.adam = adam.ExportState();
    ckpt.rng = rng.SaveState();
    ckpt.source_state = train->ExportState();
    ckpt.best_params.reserve(best_params.size());
    for (const Tensor& t : best_params) {
      ckpt.best_params.push_back(t.Clone());
    }
    std::string err;
    if (!SaveTrainCheckpoint(config_.checkpoint_path, ckpt, &err)) {
      ++result.checkpoint_write_failures;
      std::cerr << model->name() << ": checkpoint write failed (" << err
                << "); training continues\n";
    }
  };

  nn::ForwardContext train_ctx;
  train_ctx.training = true;
  train_ctx.rng = &rng;

  bool aborted = false;
  for (int64_t epoch = start_epoch;
       epoch < config_.max_epochs && !aborted; ++epoch) {
    const StreamSnapshot boundary = take_snapshot();
    double epoch_loss = 0.0;
    int64_t epoch_batches = 0;
    bool epoch_complete = false;
    while (!epoch_complete && !aborted) {
      train->StartEpoch();
      epoch_loss = 0.0;
      epoch_batches = 0;
      bool rolled_back = false;
      data::Batch batch;
      while (train->Next(&batch)) {
        Stopwatch sw;
        adam.ZeroGrad();
        ag::Variable logits = model->Forward(batch, &train_ctx);
        ag::Variable loss = ag::BceWithLogits(logits, batch.y);
        loss.Backward();
        if (inject->ConsumePoisonGrad(global_step)) {
          PoisonGradients(params);
        }
        const float grad_norm =
            config_.clip_norm > 0.0f
                ? optim::ClipGradNorm(params, config_.clip_norm)
                : optim::GlobalGradNorm(params);
        const double loss_value = loss.value()[0];
        ++global_step;
        const health::StepVerdict verdict =
            monitor.Check(loss_value, grad_norm);
        if (verdict != health::StepVerdict::kHealthy) {
          if (config_.verbose) {
            std::cerr << model->name() << " epoch " << epoch << " step "
                      << global_step - 1 << ": "
                      << health::StepVerdictName(verdict) << " (loss "
                      << loss_value << ", grad norm " << grad_norm << ")\n";
          }
          if (config_.health.policy == health::RecoveryPolicy::kSkipBatch &&
              result.skipped_batches < config_.health.max_skipped_batches) {
            ++result.skipped_batches;
            continue;
          }
          if (config_.health.policy == health::RecoveryPolicy::kRollback &&
              result.recoveries < config_.health.max_rollbacks) {
            ++result.recoveries;
            const float halved_lr = adam.lr() * 0.5f;
            restore_snapshot(boundary);
            adam.set_lr(halved_lr);
            monitor.Reset();
            rolled_back = true;
            break;
          }
          aborted = true;
          result.status_message =
              std::string("unhealthy step (") +
              health::StepVerdictName(verdict) + ") at step " +
              std::to_string(global_step - 1) + "; policy " +
              (config_.health.policy == health::RecoveryPolicy::kAbort
                   ? "abort"
                   : "recovery budget exhausted");
          break;
        }
        adam.Step();
        monitor.Observe(loss_value);
        total_batch_seconds += sw.Seconds();
        ++total_batches;
        epoch_loss += loss_value;
        ++epoch_batches;
      }
      epoch_complete = !rolled_back;
    }
    if (aborted) {
      result.epochs_run = epoch + 1;
      break;
    }
    result.epochs_run = epoch + 1;

    EvalResult epoch_val;
    if (val != nullptr) epoch_val = EvaluateSource(model, val);
    if (config_.verbose) {
      std::cerr << model->name() << " epoch " << epoch << " train_bce="
                << (epoch_batches > 0 ? epoch_loss / epoch_batches : 0.0)
                << " val_auc_pr=" << epoch_val.auc_pr << "\n";
    }
    bool stop = false;
    if (val != nullptr) {
      if (epoch_val.auc_pr > best_val_auc_pr) {
        best_val_auc_pr = epoch_val.auc_pr;
        result.val = epoch_val;
        result.best_epoch = epoch;
        epochs_without_improvement = 0;
        best_params.clear();
        for (const ag::Variable& p : params) {
          best_params.push_back(p.value().Clone());
        }
      } else if (++epochs_without_improvement > config_.patience) {
        stop = true;
      }
    }
    if (checkpointing && (epoch + 1) % config_.checkpoint_every == 0) {
      write_checkpoint(epoch + 1);
    }
    if (stop) break;
  }

  if (!best_params.empty()) {
    for (size_t i = 0; i < params.size(); ++i) {
      *params[i].mutable_value() = best_params[i];
    }
  }
  if (test != nullptr) result.test = EvaluateSource(model, test);
  result.status = aborted ? health::TrainStatus::kAborted
                  : (result.recoveries > 0 || result.skipped_batches > 0)
                      ? health::TrainStatus::kRecovered
                      : health::TrainStatus::kOk;
  result.train_seconds_per_batch =
      total_batches > 0 ? total_batch_seconds / total_batches : 0.0;
  return result;
}

}  // namespace train
}  // namespace elda
