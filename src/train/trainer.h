// Task-agnostic training loop used for every model in the evaluation.
//
// Mirrors the paper's protocol (Section V-A): Adam, initial learning rate
// 1e-3, batch size 64, 80/10/10 split, model selection on the validation
// set, metrics BCE / AUC-ROC / AUC-PR on the held-out test set. Early
// stopping monitors validation AUC-PR; the best-epoch parameters are
// restored before the final evaluation. Timing instrumentation feeds the
// Table III efficiency bench.

#ifndef ELDA_TRAIN_TRAINER_H_
#define ELDA_TRAIN_TRAINER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/emr.h"
#include "data/pipeline.h"
#include "train/sequence_model.h"

namespace elda {
namespace train {

struct TrainerConfig {
  int64_t max_epochs = 20;
  int64_t batch_size = 64;
  float learning_rate = 1e-3f;
  float clip_norm = 5.0f;   // <= 0 disables clipping
  int64_t patience = 4;     // epochs without val AUC-PR improvement
  uint64_t seed = 1;
  bool verbose = false;     // per-epoch progress on stderr
};

struct EvalResult {
  double bce = 0.0;
  double auc_roc = 0.0;
  double auc_pr = 0.0;
};

struct TrainResult {
  EvalResult val;
  EvalResult test;
  int64_t epochs_run = 0;
  int64_t best_epoch = 0;
  double train_seconds_per_batch = 0.0;
  double predict_ms_per_sample = 0.0;
  int64_t num_parameters = 0;
};

class Trainer {
 public:
  explicit Trainer(TrainerConfig config) : config_(config) {}

  // Trains `model` on prepared samples under `split`, returns validation and
  // test metrics at the best validation epoch.
  TrainResult Train(SequenceModel* model,
                    const std::vector<data::PreparedSample>& prepared,
                    const data::SplitIndices& split, data::Task task) const;

  // Evaluates a model (in eval mode) on the given index set.
  static EvalResult Evaluate(SequenceModel* model,
                             const std::vector<data::PreparedSample>& prepared,
                             const std::vector<int64_t>& indices,
                             data::Task task, int64_t batch_size = 256);

  // Sigmoid probabilities for the given index set, in order.
  static std::vector<float> PredictScores(
      SequenceModel* model,
      const std::vector<data::PreparedSample>& prepared,
      const std::vector<int64_t>& indices, data::Task task,
      int64_t batch_size = 256);

 private:
  TrainerConfig config_;
};

}  // namespace train
}  // namespace elda

#endif  // ELDA_TRAIN_TRAINER_H_
