// Task-agnostic training loop used for every model in the evaluation.
//
// Mirrors the paper's protocol (Section V-A): Adam, initial learning rate
// 1e-3, batch size 64, 80/10/10 split, model selection on the validation
// set, metrics BCE / AUC-ROC / AUC-PR on the held-out test set. Early
// stopping monitors validation AUC-PR; the best-epoch parameters are
// restored before the final evaluation. Timing instrumentation feeds the
// Table III efficiency bench.

#ifndef ELDA_TRAIN_TRAINER_H_
#define ELDA_TRAIN_TRAINER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/emr.h"
#include "data/pipeline.h"
#include "health/health.h"
#include "train/sequence_model.h"
#include "train/task_head.h"

namespace elda {
namespace train {

struct TrainerConfig {
  int64_t max_epochs = 20;
  int64_t batch_size = 64;
  float learning_rate = 1e-3f;
  float clip_norm = 5.0f;   // <= 0 disables clipping
  int64_t patience = 4;     // epochs without val AUC-PR improvement
  uint64_t seed = 1;
  bool verbose = false;     // per-epoch progress on stderr
  // Worker threads for the elda::par kernels and batched prediction during
  // this trainer's run; 0 = automatic (ELDA_THREADS env, then
  // hardware_concurrency). Applied for the duration of Train().
  int64_t num_threads = 0;

  // -- Fault tolerance -------------------------------------------------------
  // When `checkpoint_path` is non-empty and `checkpoint_every` > 0, the full
  // run state (parameters, Adam moments/step, RNG, batcher order, best-val
  // snapshot, patience counters) is written atomically to `checkpoint_path`
  // every `checkpoint_every` epochs. With `resume` set, Train() restores
  // from an existing checkpoint and continues; the resumed run converges to
  // the bitwise-identical parameters and metrics of an uninterrupted run.
  std::string checkpoint_path;
  int64_t checkpoint_every = 0;
  bool resume = false;

  // Per-step numerical-health monitoring and the recovery policy applied to
  // unhealthy steps (NaN/Inf loss or gradient norm, loss explosion).
  health::HealthConfig health;
};

// Batching/threading knobs shared by every inference surface: batched
// Trainer::Predict / Evaluate and the serve-side micro-batcher
// (serve/service.h). One struct so a knob added for one path exists on the
// other — there is deliberately no serve-local options type.
struct InferenceOptions {
  // Minibatch size: eval-mode batch for Predict, the coalescing cap for the
  // micro-batcher (most observations arriving within one flush window that
  // are scored as a single StepForward call).
  int64_t batch_size = 256;
  // Thread cap for the elda::par kernels during this call; 0 = the global
  // setting (--threads / ELDA_THREADS / hardware).
  int64_t num_threads = 0;
  // Evaluate independent minibatches concurrently on the elda::par pool.
  // Minibatch composition is fixed by batch_size and scores are written to
  // disjoint ranges, so results are bitwise identical to the serial path.
  // Ignored by the micro-batcher (one scoring thread by construction).
  bool parallel = true;
  // Optional attention-capture sink threaded into every ForwardContext on
  // this path (nullptr = capture nothing). Forces Predict onto the serial
  // path: concurrent workers would interleave last-writer-wins captures.
  nn::CaptureSink* capture = nullptr;
};

// Scores and aligned labels for one index set, in `indices` order.
struct PredictResult {
  std::vector<float> scores;  // sigmoid probabilities
  std::vector<float> labels;  // task labels
};

struct EvalResult {
  double bce = 0.0;
  double auc_roc = 0.0;
  double auc_pr = 0.0;
};

// Per-head metrics for a multi-task evaluation, in the MultiHead's Add
// order. Per-step heads (decompensation) report masked, micro-averaged
// metrics over valid (score, label) cells: padding steps are excluded by
// the validity mask and warm-up steps by the non-finite-score rule (see
// metrics/metrics.h).
struct MultiTaskEvalResult {
  std::vector<std::string> tasks;    // task_name per head
  std::vector<EvalResult> per_task;  // aligned with `tasks`
  // Unweighted mean AUC-PR across heads — the model-selection metric of the
  // multi-task loop. With a single head this is that head's AUC-PR, so
  // single-task training through MultiHead early-stops identically to the
  // legacy loop.
  double mean_auc_pr = 0.0;

  // Metrics for a task by name; CHECK-fails when absent.
  const EvalResult& ForTask(const std::string& task) const;
};

struct MultiTaskTrainResult {
  MultiTaskEvalResult val;   // best-epoch parameters, validation split
  MultiTaskEvalResult test;  // best-epoch parameters, test split
  int64_t epochs_run = 0;
  int64_t best_epoch = 0;
  int64_t num_parameters = 0;  // trunk + heads
  double train_seconds_per_batch = 0.0;

  health::TrainStatus status = health::TrainStatus::kOk;
  std::string status_message;
  int64_t recoveries = 0;
  int64_t skipped_batches = 0;
  int64_t checkpoint_write_failures = 0;
};

struct TrainResult {
  EvalResult val;
  EvalResult test;
  int64_t epochs_run = 0;
  int64_t best_epoch = 0;
  double train_seconds_per_batch = 0.0;
  double predict_ms_per_sample = 0.0;
  int64_t num_parameters = 0;

  // Structured run outcome. kOk / kRecovered mean val/test metrics are
  // valid; anything else means the run ended early and `status_message`
  // says why (metrics are best-so-far for kAborted, zero otherwise).
  health::TrainStatus status = health::TrainStatus::kOk;
  std::string status_message;
  int64_t recoveries = 0;        // rollback-and-halve interventions taken
  int64_t skipped_batches = 0;   // unhealthy batches dropped (skip policy)
  int64_t checkpoint_write_failures = 0;
};

class Trainer {
 public:
  explicit Trainer(TrainerConfig config) : config_(config) {}

  // Trains `model` on prepared samples under `split`, returns validation and
  // test metrics at the best validation epoch.
  TrainResult Train(SequenceModel* model,
                    const std::vector<data::PreparedSample>& prepared,
                    const data::SplitIndices& split, data::Task task) const;

  // Runs the model graph-free (ag::NoGradScope, inference-mode
  // ForwardContext) over the given index set in minibatches and returns
  // sigmoid probabilities plus the aligned task labels, both in `indices`
  // order. The single batching loop behind every evaluation and scoring
  // path; independent minibatches are evaluated across the elda::par pool
  // when `options.parallel` is set, each worker with its own context.
  static PredictResult Predict(const SequenceModel* model,
                               const std::vector<data::PreparedSample>& prepared,
                               const std::vector<int64_t>& indices,
                               data::Task task,
                               const InferenceOptions& options = {});

  // Thin metrics wrapper over Predict(): BCE / AUC-ROC / AUC-PR on the
  // given index set.
  static EvalResult Evaluate(const SequenceModel* model,
                             const std::vector<data::PreparedSample>& prepared,
                             const std::vector<int64_t>& indices,
                             data::Task task,
                             const InferenceOptions& options = {});

  // -- Multi-task (encoder + task heads) ------------------------------------
  //
  // Trains one encoder trunk under a MultiHead's weighted joint loss. The
  // optimizer, gradient clipping, health monitoring, and epoch-boundary
  // checkpoint/resume cover trunk AND head parameters (bundled via
  // ModelWithHead, trunk first); an interrupted-and-resumed run converges to
  // bitwise-identical parameters. `task` fixes which primary label rides in
  // batch.y (what BinaryTerminalHead trains on); per-step and per-head
  // labels come from the batch's multi-task slabs. Model selection monitors
  // the unweighted mean AUC-PR across heads, and with a single
  // BinaryTerminalHead of weight 1 the whole loop — batches, dropout draws,
  // losses, updates, early stopping — is bitwise the single-task Train().
  MultiTaskTrainResult TrainMultiTask(
      SequenceModel* model, MultiHead* heads,
      const std::vector<data::PreparedSample>& prepared,
      const data::SplitIndices& split,
      data::Task task = data::Task::kMortality) const;

  // Graph-free multi-task evaluation: one encoding bundle per minibatch,
  // every head scored over it, masked metrics per head. Minibatch
  // composition matches Predict(), and head logits are batching-independent,
  // so scores are bitwise stable across batch sizes.
  static MultiTaskEvalResult EvaluateMultiTask(
      const SequenceModel* model, const MultiHead* heads,
      const std::vector<data::PreparedSample>& prepared,
      const std::vector<int64_t>& indices, data::Task task,
      const InferenceOptions& options = {});

  // -- Streamed (out-of-core) paths -----------------------------------------
  //
  // The same protocol as Train/Predict/Evaluate, but batches come from a
  // data::BatchSource (the in-RAM Batcher or the out-of-core ShardedLoader),
  // so cohorts never need to fit in memory. Checkpoints carry the source's
  // exported cursor state instead of a batch order; with a self-contained
  // source (ShardedLoader owns its shuffle rng) resume is bitwise. Labels
  // ride in each batch's y, so no task/split arguments are needed.

  // One full pass over `source` (StartEpoch + drain), graph-free; scores and
  // labels in the source's epoch order.
  static PredictResult PredictSource(const SequenceModel* model,
                                     data::BatchSource* source,
                                     const InferenceOptions& options = {});

  // Metrics wrapper over PredictSource().
  static EvalResult EvaluateSource(const SequenceModel* model,
                                   data::BatchSource* source,
                                   const InferenceOptions& options = {});

  // Trains on `train`, selecting on `val` and reporting on `test` (either
  // may be null: no early stopping / no test metrics respectively). Health
  // policies, fault injection, and epoch-boundary checkpoint/resume match
  // Train; the rollback and resume paths restore the training source via
  // RestoreState.
  TrainResult TrainStreamed(SequenceModel* model, data::BatchSource* train,
                            data::BatchSource* val,
                            data::BatchSource* test) const;

 private:
  TrainerConfig config_;
};

}  // namespace train
}  // namespace elda

#endif  // ELDA_TRAIN_TRAINER_H_
