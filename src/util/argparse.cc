#include "util/argparse.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "util/logging.h"

namespace elda {
namespace util {
namespace {

const char* TypeName(int type) {
  switch (type) {
    case 0: return "string";
    case 1: return "int";
    case 2: return "double";
    default: return "bool";
  }
}

bool ParseInt(const std::string& text, int64_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseBool(const std::string& text, bool* out) {
  if (text == "true" || text == "1" || text == "yes" || text == "on") {
    *out = true;
    return true;
  }
  if (text == "false" || text == "0" || text == "no" || text == "off") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

ArgParser& ArgParser::Register(const std::string& name, Type type, void* dest,
                               const std::string& help,
                               std::string default_repr) {
  ELDA_CHECK(Find(name) == nullptr) << "duplicate flag --" << name;
  ELDA_CHECK(dest != nullptr);
  Flag flag;
  flag.name = name;
  flag.type = type;
  flag.dest = dest;
  flag.help = help;
  flag.default_repr = std::move(default_repr);
  flags_.push_back(std::move(flag));
  return *this;
}

ArgParser& ArgParser::String(const std::string& name, std::string* value,
                             const std::string& help) {
  return Register(name, Type::kString, value, help,
                  value->empty() ? "\"\"" : *value);
}

ArgParser& ArgParser::Int(const std::string& name, int64_t* value,
                          const std::string& help) {
  return Register(name, Type::kInt, value, help, std::to_string(*value));
}

ArgParser& ArgParser::Double(const std::string& name, double* value,
                             const std::string& help) {
  return Register(name, Type::kDouble, value, help, std::to_string(*value));
}

ArgParser& ArgParser::Bool(const std::string& name, bool* value,
                           const std::string& help) {
  return Register(name, Type::kBool, value, help, *value ? "true" : "false");
}

ArgParser::Flag* ArgParser::Find(const std::string& name) {
  for (Flag& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

const ArgParser::Flag* ArgParser::Find(const std::string& name) const {
  for (const Flag& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

bool ArgParser::Assign(Flag* flag, const std::string& value,
                       std::string* error) {
  switch (flag->type) {
    case Type::kString:
      *static_cast<std::string*>(flag->dest) = value;
      return true;
    case Type::kInt:
      if (ParseInt(value, static_cast<int64_t*>(flag->dest))) return true;
      break;
    case Type::kDouble:
      if (ParseDouble(value, static_cast<double*>(flag->dest))) return true;
      break;
    case Type::kBool:
      if (ParseBool(value, static_cast<bool*>(flag->dest))) return true;
      break;
  }
  *error = "invalid " + std::string(TypeName(static_cast<int>(flag->type))) +
           " value '" + value + "' for --" + flag->name;
  return false;
}

std::string ArgParser::Usage() const {
  std::string usage = "usage: " + program_ + " [flags]\n";
  if (!description_.empty()) usage += description_ + "\n";
  usage += "\nflags:\n";
  for (const Flag& flag : flags_) {
    std::string line = "  --" + flag.name;
    if (flag.type != Type::kBool) {
      line += " <" + std::string(TypeName(static_cast<int>(flag.type))) + ">";
    }
    while (line.size() < 28) line.push_back(' ');
    line += flag.help + " (default: " + flag.default_repr + ")\n";
    usage += line;
  }
  std::string help_line = "  --help";
  while (help_line.size() < 28) help_line.push_back(' ');
  usage += help_line + "print this message and exit\n";
  return usage;
}

void ArgParser::Parse(int argc, char** argv) {
  auto fail = [&](const std::string& message) {
    std::fprintf(stderr, "%s: %s\n\n%s", program_.c_str(), message.c_str(),
                 Usage().c_str());
    std::exit(2);
  };

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fprintf(stdout, "%s", Usage().c_str());
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0 || arg.size() <= 2) {
      fail("unexpected argument '" + arg + "'");
    }
    arg.erase(0, 2);

    std::string value;
    bool has_value = false;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.erase(eq);
      has_value = true;
    }

    Flag* flag = Find(arg);
    if (flag == nullptr) fail("unknown flag --" + arg);

    if (!has_value) {
      if (flag->type == Type::kBool) {
        // Bare `--switch` sets true; an explicit value still works via
        // `--switch=false`.
        *static_cast<bool*>(flag->dest) = true;
        flag->provided = true;
        continue;
      }
      if (i + 1 >= argc) fail("flag --" + arg + " expects a value");
      value = argv[++i];
    }

    std::string error;
    if (!Assign(flag, value, &error)) fail(error);
    flag->provided = true;
  }
}

bool ArgParser::Provided(const std::string& name) const {
  const Flag* flag = Find(name);
  return flag != nullptr && flag->provided;
}

}  // namespace util
}  // namespace elda
