// Declarative command-line parsing for the bench and example binaries —
// the successor to the stringly-typed util::Flags spec. Flags register a
// typed destination plus help text up front, so every binary gets a
// `--help` usage page for free, values are validated at parse time (a
// malformed integer is a usage error, not an uncaught std::stoll throw),
// and the registration site is the single source of defaults.
//
//   std::string model = "GRU";
//   int64_t sessions = 100000;
//   bool verbose = false;
//   util::ArgParser parser("bench_serve_load", "Streaming load generator.");
//   parser.String("model", &model, "registry model to serve")
//         .Int("sessions", &sessions, "resident sessions to admit")
//         .Bool("verbose", &verbose, "per-phase progress");
//   parser.Parse(argc, argv);
//
// Accepted forms: `--name value`, `--name=value`, bare `--switch` for
// bools. `--help` prints the usage page and exits 0; unknown flags and
// malformed values print an error plus usage and exit 2.

#ifndef ELDA_UTIL_ARGPARSE_H_
#define ELDA_UTIL_ARGPARSE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace elda {
namespace util {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  // Registration. The destination's current value is the default shown in
  // --help; Parse overwrites it only when the flag is given. Returns *this
  // for chaining.
  ArgParser& String(const std::string& name, std::string* value,
                    const std::string& help);
  ArgParser& Int(const std::string& name, int64_t* value,
                 const std::string& help);
  ArgParser& Double(const std::string& name, double* value,
                    const std::string& help);
  ArgParser& Bool(const std::string& name, bool* value,
                  const std::string& help);

  // Parses argv; exits on --help (0) or usage errors (2).
  void Parse(int argc, char** argv);

  // True when the flag was given explicitly on the parsed command line.
  bool Provided(const std::string& name) const;

  std::string Usage() const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Flag {
    std::string name;
    Type type;
    void* dest;
    std::string help;
    std::string default_repr;
    bool provided = false;
  };

  ArgParser& Register(const std::string& name, Type type, void* dest,
                      const std::string& help, std::string default_repr);
  Flag* Find(const std::string& name);
  const Flag* Find(const std::string& name) const;
  // Assigns `value` to the flag's destination; returns false (with a
  // message in *error) when the value does not parse as the flag's type.
  bool Assign(Flag* flag, const std::string& value, std::string* error);

  std::string program_;
  std::string description_;
  std::vector<Flag> flags_;
};

}  // namespace util
}  // namespace elda

#endif  // ELDA_UTIL_ARGPARSE_H_
