#include "util/flags.h"

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "util/logging.h"

namespace elda {

Flags::Flags(int argc, char** argv, const std::vector<std::string>& spec) {
  auto known = [&spec](const std::string& name) {
    return std::find(spec.begin(), spec.end(), name) != spec.end();
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::cerr << "unexpected positional argument: " << arg << "\n";
      std::exit(2);
    }
    arg = arg.substr(2);
    std::string name = arg;
    std::string value;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    } else {
      value = "true";  // bare switch
    }
    if (!known(name)) {
      std::cerr << "unknown flag --" << name << "; accepted flags:";
      for (const auto& s : spec) std::cerr << " --" << s;
      std::cerr << "\n";
      std::exit(2);
    }
    values_[name] = value;
  }
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : std::stoll(it->second);
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : std::stod(it->second);
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace elda
