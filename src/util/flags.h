// Minimal command-line flag parsing for the bench and example binaries.
//
// Supports `--name value` and `--name=value` forms plus bare boolean
// switches (`--full`). Unknown flags are a fatal error so typos in an
// experiment invocation cannot silently change its meaning.

#ifndef ELDA_UTIL_FLAGS_H_
#define ELDA_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace elda {

class Flags {
 public:
  // Parses argv. `spec` lists the accepted flag names (without the leading
  // dashes); passing a flag outside the spec aborts with a usage message.
  Flags(int argc, char** argv, const std::vector<std::string>& spec);

  bool Has(const std::string& name) const;

  // Typed accessors with defaults for absent flags.
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace elda

#endif  // ELDA_UTIL_FLAGS_H_
