// Lightweight logging and invariant-checking macros.
//
// This project follows the Google C++ style: exceptions are not used, and
// violated invariants are programming errors that abort the process with a
// diagnostic. CHECK macros are active in all build modes; DCHECK compiles out
// in NDEBUG builds and is used on hot paths.

#ifndef ELDA_UTIL_LOGGING_H_
#define ELDA_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace elda {
namespace internal_logging {

// Accumulates a failure message and aborts on destruction. Used as the
// right-hand side of the CHECK macros so call sites can stream extra context:
//   CHECK(ok) << "while processing sample " << i;
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const std::string& condition) {
    stream_ << "[CHECK failed] " << file << ":" << line << ": " << condition;
  }

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  [[noreturn]] ~FatalMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  FatalMessage& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Converts a fully streamed FatalMessage to void. operator& binds more
// loosely than operator<<, so in `Voidify() & message << a << b` all the
// streaming happens first — this lets call sites append context:
//   ELDA_CHECK(ok) << "while processing sample " << i;
class Voidify {
 public:
  void operator&(const FatalMessage&) {}
};

}  // namespace internal_logging
}  // namespace elda

#define ELDA_CHECK(condition)                                 \
  (condition) ? (void)0                                       \
              : ::elda::internal_logging::Voidify() &         \
                    ::elda::internal_logging::FatalMessage(   \
                        __FILE__, __LINE__, #condition)

// Binary comparison checks print both operand values on failure.
#define ELDA_CHECK_OP(op, a, b)                                            \
  ((a)op(b)) ? (void)0                                                     \
             : ::elda::internal_logging::Voidify() &                       \
                   (::elda::internal_logging::FatalMessage(                \
                        __FILE__, __LINE__, #a " " #op " " #b)             \
                    << "(" << (a) << " vs " << (b) << ")")

#define ELDA_CHECK_EQ(a, b) ELDA_CHECK_OP(==, a, b)
#define ELDA_CHECK_NE(a, b) ELDA_CHECK_OP(!=, a, b)
#define ELDA_CHECK_LT(a, b) ELDA_CHECK_OP(<, a, b)
#define ELDA_CHECK_LE(a, b) ELDA_CHECK_OP(<=, a, b)
#define ELDA_CHECK_GT(a, b) ELDA_CHECK_OP(>, a, b)
#define ELDA_CHECK_GE(a, b) ELDA_CHECK_OP(>=, a, b)

#ifdef NDEBUG
#define ELDA_DCHECK(condition) (void)0
#define ELDA_DCHECK_EQ(a, b) (void)0
#define ELDA_DCHECK_LT(a, b) (void)0
#define ELDA_DCHECK_LE(a, b) (void)0
#else
#define ELDA_DCHECK(condition) ELDA_CHECK(condition)
#define ELDA_DCHECK_EQ(a, b) ELDA_CHECK_EQ(a, b)
#define ELDA_DCHECK_LT(a, b) ELDA_CHECK_LT(a, b)
#define ELDA_DCHECK_LE(a, b) ELDA_CHECK_LE(a, b)
#endif

#endif  // ELDA_UTIL_LOGGING_H_
