#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace elda {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  // xoshiro256++ step.
  const uint64_t result = RotL(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high-quality bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t n) {
  ELDA_CHECK_GT(n, 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t un = static_cast<uint64_t>(n);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  uint64_t v = Next();
  while (v >= limit) v = Next();
  return static_cast<int64_t>(v % un);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller transform; u1 is kept away from zero for the log.
  double u1 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

Rng Rng::Fork() { return Rng(Next()); }

RngState Rng::SaveState() const {
  RngState state;
  for (int i = 0; i < 4; ++i) state.s[i] = state_[i];
  state.cached_normal = cached_normal_;
  state.has_cached_normal = has_cached_normal_;
  return state;
}

void Rng::RestoreState(const RngState& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.s[i];
  cached_normal_ = state.cached_normal;
  has_cached_normal_ = state.has_cached_normal;
}

}  // namespace elda
