// Deterministic pseudo-random number generation.
//
// All stochastic components in this repository (parameter initialisation,
// dropout, data shuffling, the patient simulator) draw from an explicitly
// seeded Rng so that experiments are reproducible bit-for-bit at a fixed
// seed. The core generator is xoshiro256++, seeded via splitmix64.

#ifndef ELDA_UTIL_RNG_H_
#define ELDA_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace elda {

// Complete serialisable state of an Rng, for crash-safe checkpoint/resume:
// restoring it replays the stream bit-for-bit from the capture point.
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  double cached_normal = 0.0;
  bool has_cached_normal = false;
};

// A small, fast, deterministic random number generator.
//
// Not thread-safe: each thread (this project is single-threaded) or each
// logical component should own its own Rng, typically forked from a parent
// via Fork() so that adding draws to one component does not perturb another.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Next raw 64-bit value.
  uint64_t Next();

  // Uniform in [0, 1).
  double Uniform();

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  int64_t UniformInt(int64_t n);

  // Standard normal via Box-Muller (caches the second deviate).
  double Normal();

  // Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  // Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (int64_t i = static_cast<int64_t>(values->size()) - 1; i > 0; --i) {
      int64_t j = UniformInt(i + 1);
      std::swap((*values)[i], (*values)[j]);
    }
  }

  // Returns an independent generator derived from this one's stream. Useful
  // for giving each patient / each layer its own reproducible stream.
  Rng Fork();

  // Snapshot / restore of the full generator state (including the cached
  // Box-Muller deviate), used by the trainer's checkpoint/resume path.
  RngState SaveState() const;
  void RestoreState(const RngState& state);

 private:
  uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace elda

#endif  // ELDA_UTIL_RNG_H_
