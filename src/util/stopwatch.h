// Wall-clock stopwatch used by the training loop and the efficiency bench.

#ifndef ELDA_UTIL_STOPWATCH_H_
#define ELDA_UTIL_STOPWATCH_H_

#include <chrono>

namespace elda {

// Measures elapsed wall-clock time in seconds. Starts running on
// construction; Restart() resets the origin.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Milliseconds() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace elda

#endif  // ELDA_UTIL_STOPWATCH_H_
