#include "util/table.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace elda {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      out << cell << std::string(widths[i] - cell.size(), ' ');
      if (i + 1 < widths.size()) out << "  ";
    }
    out << "\n";
  };
  emit(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string TablePrinter::Num(double value, int precision) {
  if (std::isnan(value)) return "-";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace elda
