// Console table rendering for the benchmark harness.
//
// Every table/figure bench prints the paper's reported values next to the
// measured ones; TablePrinter keeps those reports aligned and readable.

#ifndef ELDA_UTIL_TABLE_H_
#define ELDA_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace elda {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  // Adds a row; missing trailing cells render as empty.
  void AddRow(std::vector<std::string> row);

  // Renders the table with a rule under the header.
  std::string ToString() const;

  // Formats a double with the given precision ("-" for NaN).
  static std::string Num(double value, int precision = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace elda

#endif  // ELDA_UTIL_TABLE_H_
