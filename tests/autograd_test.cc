#include <cmath>
#include <tuple>
#include <functional>
#include <string>
#include <vector>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "autograd/variable.h"
#include "gtest/gtest.h"
#include "tensor/tensor_ops.h"

namespace elda {
namespace ag {
namespace {

Variable Param(std::vector<int64_t> shape, uint64_t seed, float scale = 1.0f) {
  Rng rng(seed);
  return Variable(Tensor::Normal(std::move(shape), 0.0f, scale, &rng),
                  /*requires_grad=*/true);
}

void ExpectGradCheck(const std::function<Variable()>& f,
                     const std::vector<Variable>& params) {
  std::string error;
  EXPECT_TRUE(CheckGradients(f, params, {}, &error)) << error;
}

TEST(VariableTest, LeafProperties) {
  Variable v(Tensor::FromData({2}, {1, 2}), /*requires_grad=*/true);
  EXPECT_TRUE(v.defined());
  EXPECT_TRUE(v.requires_grad());
  EXPECT_FALSE(v.has_grad());
  EXPECT_EQ(v.value()[1], 2.0f);
}

TEST(VariableTest, BackwardThroughSimpleChain) {
  Variable x(Tensor::FromData({3}, {1, 2, 3}), true);
  Variable y = SumAll(Mul(x, x));  // sum(x^2); dy/dx = 2x
  y.Backward();
  ASSERT_TRUE(x.has_grad());
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 4.0f);
  EXPECT_FLOAT_EQ(x.grad()[2], 6.0f);
}

TEST(VariableTest, GradAccumulatesAcrossBackwardCalls) {
  Variable x(Tensor::FromData({1}, {3}), true);
  Variable y = SumAll(Mul(x, x));
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 6.0f);
  Variable y2 = SumAll(Mul(x, x));
  y2.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 12.0f);
  x.ZeroGrad();
  EXPECT_FALSE(x.has_grad());
}

TEST(VariableTest, SharedSubexpressionGetsSummedGradient) {
  Variable x(Tensor::FromData({1}, {2}), true);
  Variable y = Add(Mul(x, x), Mul(x, x));  // 2x^2, dy/dx = 4x = 8
  SumAll(y).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 8.0f);
}

TEST(VariableTest, DetachCutsTheGraph) {
  Variable x(Tensor::FromData({1}, {2}), true);
  Variable d = Mul(x, x).Detach();
  EXPECT_FALSE(d.requires_grad());
  Variable y = SumAll(Mul(d, x));  // only the direct x path contributes
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 4.0f);  // d = 4 constant
}

TEST(VariableTest, ConstantsDoNotAccumulateGradients) {
  Variable x(Tensor::FromData({1}, {2}), true);
  Variable c = Constant(Tensor::FromData({1}, {5}));
  Variable y = SumAll(Mul(x, c));
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 5.0f);
  EXPECT_FALSE(c.has_grad());
}

TEST(VariableTest, GraphPruningWithoutGradParents) {
  // An expression of constants produces a node with no backward work.
  Variable a = Constant(Tensor::FromData({2}, {1, 2}));
  Variable b = Constant(Tensor::FromData({2}, {3, 4}));
  Variable c = Mul(a, b);
  EXPECT_FALSE(c.requires_grad());
}

TEST(VariableDeathTest, BackwardRequiresScalar) {
  Variable x(Tensor::FromData({2}, {1, 2}), true);
  Variable y = Mul(x, x);
  EXPECT_DEATH(y.Backward(), "scalar");
}

// ---- Per-op grad checks -----------------------------------------------------

TEST(GradCheckTest, Add) {
  Variable a = Param({3, 4}, 1);
  Variable b = Param({3, 4}, 2);
  ExpectGradCheck([&] { return SumAll(Add(a, b)); }, {a, b});
}

TEST(GradCheckTest, AddBroadcast) {
  Variable a = Param({3, 4}, 3);
  Variable b = Param({4}, 4);
  ExpectGradCheck([&] { return SumAll(Square(Add(a, b))); }, {a, b});
}

TEST(GradCheckTest, SubMulDiv) {
  Variable a = Param({2, 3}, 5);
  Variable b = Param({2, 3}, 6);
  ExpectGradCheck(
      [&] {
        // Keep the divisor away from zero. The expression must be rebuilt on
        // every call so the finite differences see the perturbed values.
        Variable safe_b = AddScalar(Mul(b, b), 1.0f);
        return SumAll(Div(Sub(a, b), safe_b));
      },
      {a, b});
}

TEST(GradCheckTest, MulBroadcastBothWays) {
  Variable a = Param({2, 1, 3}, 7);
  Variable b = Param({4, 1}, 8);
  ExpectGradCheck([&] { return SumAll(Mul(a, b)); }, {a, b});
}

TEST(GradCheckTest, ScalarOps) {
  Variable a = Param({5}, 9);
  ExpectGradCheck([&] { return SumAll(AddScalar(MulScalar(a, 3.0f), 1.0f)); },
                  {a});
}

TEST(GradCheckTest, UnaryChain) {
  Variable a = Param({4}, 10, 0.5f);
  ExpectGradCheck([&] { return SumAll(Tanh(Sigmoid(a))); }, {a});
}

TEST(GradCheckTest, ExpLogSquareSqrt) {
  Variable a = Param({4}, 11, 0.5f);
  ExpectGradCheck(
      [&] { return SumAll(Log(AddScalar(Square(a), 1.0f))); }, {a});
  ExpectGradCheck(
      [&] { return SumAll(Sqrt(AddScalar(Square(a), 1.0f))); }, {a});
  ExpectGradCheck([&] { return SumAll(Exp(MulScalar(a, 0.5f))); }, {a});
}

TEST(GradCheckTest, ReluAwayFromKink) {
  // Values are pushed away from 0 so the finite difference is valid.
  Variable a(Tensor::FromData({4}, {-2.0f, -1.0f, 1.0f, 2.0f}), true);
  ExpectGradCheck([&] { return SumAll(Relu(a)); }, {a});
}

TEST(GradCheckTest, AbsAwayFromKink) {
  Variable a(Tensor::FromData({4}, {-2.0f, -0.8f, 0.7f, 1.5f}), true);
  ExpectGradCheck([&] { return SumAll(Abs(a)); }, {a});
}

TEST(GradCheckTest, ClipStrictlyInsideAndOutside) {
  // Values chosen so no element sits within epsilon of the clip bounds.
  Variable a(Tensor::FromData({4}, {-3.0f, -0.4f, 0.4f, 3.0f}), true);
  ExpectGradCheck([&] { return SumAll(Square(Clip(a, -1.0f, 1.0f))); }, {a});
}

TEST(GradCheckTest, PowOnPositiveInputs) {
  Variable a(Tensor::FromData({3}, {0.5f, 1.2f, 2.5f}), true);
  ExpectGradCheck([&] { return SumAll(Pow(a, 1.7f)); }, {a});
  ExpectGradCheck([&] { return SumAll(Pow(a, -0.5f)); }, {a});
}

TEST(OpValueTest, ClipSaturatedRegionsHaveZeroGradient) {
  Variable a(Tensor::FromData({3}, {-5.0f, 0.0f, 5.0f}), true);
  SumAll(Clip(a, -1.0f, 1.0f)).Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 0.0f);
  EXPECT_FLOAT_EQ(a.grad()[1], 1.0f);
  EXPECT_FLOAT_EQ(a.grad()[2], 0.0f);
}

TEST(GradCheckTest, MatMul2d) {
  Variable a = Param({3, 4}, 12, 0.5f);
  Variable b = Param({4, 2}, 13, 0.5f);
  ExpectGradCheck([&] { return SumAll(Square(MatMul(a, b))); }, {a, b});
}

TEST(GradCheckTest, MatMulBatched) {
  Variable a = Param({2, 3, 4}, 14, 0.5f);
  Variable b = Param({2, 4, 2}, 15, 0.5f);
  ExpectGradCheck([&] { return SumAll(Square(MatMul(a, b))); }, {a, b});
}

TEST(GradCheckTest, MatMulSharedRhs) {
  Variable a = Param({2, 3, 4}, 16, 0.5f);
  Variable w = Param({4, 2}, 17, 0.5f);
  ExpectGradCheck([&] { return SumAll(Square(MatMul(a, w))); }, {a, w});
}

TEST(GradCheckTest, ReshapeTranspose) {
  Variable a = Param({2, 6}, 18);
  ExpectGradCheck(
      [&] {
        Variable r = Reshape(a, {2, 3, 2});
        return SumAll(Square(TransposeLast2(r)));
      },
      {a});
}

TEST(GradCheckTest, ConcatAndSlice) {
  Variable a = Param({2, 3}, 19);
  Variable b = Param({2, 2}, 20);
  ExpectGradCheck(
      [&] {
        Variable c = Concat({a, b}, 1);
        return SumAll(Square(Slice(c, 1, 1, 3)));
      },
      {a, b});
}

TEST(GradCheckTest, SumMeanAxes) {
  Variable a = Param({3, 4, 2}, 21);
  ExpectGradCheck([&] { return SumAll(Square(Sum(a, 1))); }, {a});
  ExpectGradCheck([&] { return SumAll(Square(Mean(a, 0, true))); }, {a});
  ExpectGradCheck([&] { return MeanAll(Square(a)); }, {a});
}

TEST(GradCheckTest, SoftmaxAxis) {
  Variable a = Param({3, 5}, 22);
  Variable w = Constant(Tensor::FromData({5}, {1, -1, 2, 0.5, -0.5}));
  ExpectGradCheck([&] { return SumAll(Square(Mul(Softmax(a, 1), w))); }, {a});
}

TEST(GradCheckTest, SoftmaxMiddleAxis) {
  Variable a = Param({2, 4, 3}, 23);
  ExpectGradCheck([&] { return SumAll(Square(Softmax(a, 1))); }, {a});
}

TEST(GradCheckTest, MaskedSoftmax) {
  Variable a = Param({2, 4}, 24);
  Tensor mask({2, 4});
  mask.at({0, 1}) = -1e9f;
  mask.at({1, 3}) = -1e9f;
  Variable m = Constant(mask);
  ExpectGradCheck([&] { return SumAll(Square(Softmax(Add(a, m), 1))); }, {a});
}

TEST(GradCheckTest, BceWithLogits) {
  Variable z = Param({6}, 25);
  Tensor y = Tensor::FromData({6}, {1, 0, 1, 1, 0, 0});
  ExpectGradCheck([&] { return BceWithLogits(z, y); }, {z});
}

// ---- Value checks ------------------------------------------------------------

TEST(OpValueTest, BceMatchesManualComputation) {
  Variable z(Tensor::FromData({2}, {0.0f, 2.0f}), true);
  Tensor y = Tensor::FromData({2}, {1.0f, 0.0f});
  const float expected =
      0.5f * (-std::log(0.5f) - std::log(1.0f - 1.0f / (1.0f + std::exp(-2.0f))));
  EXPECT_NEAR(BceWithLogits(z, y).value()[0], expected, 1e-5);
}

TEST(OpValueTest, BceStableAtExtremeLogits) {
  Variable z(Tensor::FromData({2}, {50.0f, -50.0f}), true);
  Tensor y = Tensor::FromData({2}, {1.0f, 0.0f});
  Variable loss = BceWithLogits(z, y);
  EXPECT_TRUE(std::isfinite(loss.value()[0]));
  EXPECT_NEAR(loss.value()[0], 0.0f, 1e-5);
  loss.Backward();
  EXPECT_TRUE(std::isfinite(z.grad()[0]));
}

TEST(OpValueTest, DropoutEvalModeIsIdentity) {
  Rng rng(1);
  Variable a = Param({100}, 26);
  Variable d = Dropout(a, 0.5f, /*training=*/false, &rng);
  EXPECT_TRUE(AllClose(d.value(), a.value()));
}

TEST(OpValueTest, DropoutTrainingScalesKeptUnits) {
  Rng rng(2);
  Variable a(Tensor::Ones({10000}), true);
  Variable d = Dropout(a, 0.25f, /*training=*/true, &rng);
  int64_t zeros = 0;
  for (int64_t i = 0; i < d.value().size(); ++i) {
    const float v = d.value()[i];
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.0f / 0.75f, 1e-5);
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.25, 0.02);
  // The expected value is preserved.
  EXPECT_NEAR(MeanAll(d.value()), 1.0f, 0.03f);
}

TEST(OpValueTest, DropoutBackwardUsesSameMask) {
  Rng rng(3);
  Variable a(Tensor::Ones({1000}), true);
  Variable d = Dropout(a, 0.5f, /*training=*/true, &rng);
  SumAll(d).Backward();
  for (int64_t i = 0; i < a.value().size(); ++i) {
    EXPECT_FLOAT_EQ(a.grad()[i], d.value()[i]);
  }
}

TEST(OpValueTest, MeanAllOfConstant) {
  Variable a = Constant(Tensor::Full({4}, 3.0f));
  EXPECT_FLOAT_EQ(MeanAll(a).value()[0], 3.0f);
}

// Parameterised sweep: gradients of broadcast Mul/Add/Div must be correct
// for every supported shape pairing (this drives both the suffix fast path
// and the general odometer path, forward and backward).
using ShapePair = std::tuple<std::vector<int64_t>, std::vector<int64_t>>;

class BroadcastGradTest : public ::testing::TestWithParam<ShapePair> {};

TEST_P(BroadcastGradTest, MulGradientsAcrossBroadcastShapes) {
  const auto& [sa, sb] = GetParam();
  Variable a = Param(sa, 101);
  Variable b = Param(sb, 102);
  ExpectGradCheck([&] { return SumAll(Square(Mul(a, b))); }, {a, b});
}

TEST_P(BroadcastGradTest, AddGradientsAcrossBroadcastShapes) {
  const auto& [sa, sb] = GetParam();
  Variable a = Param(sa, 103);
  Variable b = Param(sb, 104);
  ExpectGradCheck([&] { return SumAll(Square(Add(a, b))); }, {a, b});
}

TEST_P(BroadcastGradTest, DivGradientsAcrossBroadcastShapes) {
  const auto& [sa, sb] = GetParam();
  Variable a = Param(sa, 105);
  Variable b = Param(sb, 106);
  ExpectGradCheck(
      [&] {
        // Keep the divisor bounded away from zero.
        Variable safe = AddScalar(Square(b), 0.5f);
        return SumAll(Div(a, safe));
      },
      {a, b});
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BroadcastGradTest,
    ::testing::Values(ShapePair{{4, 5}, {4, 5}},
                      ShapePair{{4, 5}, {5}},
                      ShapePair{{4, 5}, {1}},
                      ShapePair{{2, 3, 4}, {3, 1}},
                      ShapePair{{2, 1, 4}, {1, 3, 1}},
                      ShapePair{{6}, {2, 3, 6}},
                      ShapePair{{2, 3, 4, 1}, {4, 6}}));

TEST(GradCheckHarnessTest, DetectsWrongGradients) {
  // A deliberately wrong "gradient" is built by detaching a subexpression:
  // f = sum(x * detach(x)) has analytic grad = detach(x) (treating the second
  // factor as constant), while the true derivative of the evaluated function
  // is 2x. The checker must flag the mismatch.
  Variable x(Tensor::FromData({3}, {1.0f, 2.0f, 3.0f}), true);
  std::string error;
  const bool ok = CheckGradients(
      [&] { return SumAll(Mul(x, x.Detach())); }, {x}, {}, &error);
  EXPECT_FALSE(ok);
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace ag
}  // namespace elda
