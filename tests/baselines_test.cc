#include <cmath>
#include <string>

#include "autograd/gradcheck.h"
#include "baselines/baselines.h"
#include "baselines/common.h"
#include "baselines/dipole.h"
#include "baselines/static_models.h"
#include "gtest/gtest.h"
#include "optim/optimizer.h"
#include "tensor/tensor_ops.h"

namespace elda {
namespace baselines {
namespace {

data::Batch RandomBatch(int64_t batch, int64_t steps, int64_t features,
                        uint64_t seed) {
  Rng rng(seed);
  data::Batch b;
  b.x = Tensor::Normal({batch, steps, features}, 0.0f, 1.0f, &rng);
  b.mask = Tensor({batch, steps, features});
  for (int64_t i = 0; i < b.mask.size(); ++i) {
    b.mask[i] = rng.Bernoulli(0.3) ? 1.0f : 0.0f;
  }
  b.delta = Tensor({batch, steps, features});
  for (int64_t i = 0; i < b.delta.size(); ++i) {
    // Strictly positive fractional gaps keep GRU-D's relu'd decay logits
    // away from the kink, where finite differences are invalid.
    b.delta[i] = static_cast<float>(rng.UniformInt(6)) + 0.7f;
  }
  b.y = Tensor({batch});
  for (int64_t i = 0; i < batch; ++i) {
    b.y[i] = rng.Bernoulli(0.4) ? 1.0f : 0.0f;
  }
  return b;
}

TEST(CommonTest, ReverseTimeFlipsAndRoundTrips) {
  Rng rng(1);
  ag::Variable x =
      ag::Constant(Tensor::Normal({2, 5, 3}, 0.0f, 1.0f, &rng));
  Tensor reversed = ReverseTime(x).value();
  for (int64_t t = 0; t < 5; ++t) {
    Tensor a = Slice(x.value(), 1, t, 1);
    Tensor b = Slice(reversed, 1, 4 - t, 1);
    EXPECT_TRUE(AllClose(a, b));
  }
  EXPECT_TRUE(AllClose(ReverseTime(ReverseTime(x)).value(), x.value()));
}

TEST(CommonTest, ReverseTimeGradCheck) {
  ag::Variable x(Tensor::FromData({1, 3, 2}, {1, 2, 3, 4, 5, 6}), true);
  std::string error;
  EXPECT_TRUE(ag::CheckGradients(
      [&] {
        ag::Variable w = ag::Constant(
            Tensor::FromData({1, 3, 2}, {1, -1, 2, -2, 3, -3}));
        return ag::SumAll(ag::Square(ag::Mul(ReverseTime(x), w)));
      },
      {x}, {}, &error))
      << error;
}

// ---- Registry-driven suites over every model ---------------------------------

class AllModelsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AllModelsTest, ForwardProducesFiniteLogits) {
  auto model = MakeModel(GetParam(), 7, /*seed=*/3);
  data::Batch batch = RandomBatch(4, 6, 7, 5);
  Tensor logits = model->Forward(batch).value();
  ASSERT_EQ(logits.shape(), (std::vector<int64_t>{4}));
  for (int64_t i = 0; i < 4; ++i) EXPECT_TRUE(std::isfinite(logits[i]));
}

TEST_P(AllModelsTest, NameMatchesRegistryKey) {
  auto model = MakeModel(GetParam(), 7, 3);
  EXPECT_EQ(model->name(), GetParam());
}

TEST_P(AllModelsTest, DeterministicInEvalMode) {
  // The one-argument Forward always runs in inference mode (no dropout).
  auto model = MakeModel(GetParam(), 5, 11);
  data::Batch batch = RandomBatch(3, 5, 5, 7);
  Tensor a = model->Forward(batch).value();
  Tensor b = model->Forward(batch).value();
  EXPECT_TRUE(AllClose(a, b));
}

TEST_P(AllModelsTest, BackwardPopulatesEveryParameterSomewhere) {
  auto model = MakeModel(GetParam(), 6, 13);
  data::Batch batch = RandomBatch(5, 6, 6, 17);
  model->ZeroGrad();
  ag::BceWithLogits(model->Forward(batch), batch.y).Backward();
  int64_t with_grad = 0;
  auto params = model->Parameters();
  for (const auto& p : params) with_grad += p.has_grad();
  // Every parameter participates in the loss for these architectures.
  EXPECT_EQ(with_grad, static_cast<int64_t>(params.size()));
}

TEST_P(AllModelsTest, OneAdamStepReducesTrainingLoss) {
  auto model = MakeModel(GetParam(), 6, 19);
  data::Batch batch = RandomBatch(16, 6, 6, 23);
  optim::Adam adam(model->Parameters(), 0.003f);
  // The ctx-free Forward is dropout-free, so the before/after losses and
  // the update steps are all measured on the same deterministic path.
  const float before =
      ag::BceWithLogits(model->Forward(batch), batch.y).value()[0];
  for (int step = 0; step < 15; ++step) {
    adam.ZeroGrad();
    ag::BceWithLogits(model->Forward(batch), batch.y).Backward();
    // Mirror the Trainer's protocol, including gradient clipping.
    optim::ClipGradNorm(model->Parameters(), 5.0f);
    adam.Step();
  }
  const float after =
      ag::BceWithLogits(model->Forward(batch), batch.y).value()[0];
  EXPECT_LT(after, before);
}

TEST_P(AllModelsTest, GradCheckSubsampled) {
  auto model = MakeModel(GetParam(), 4, 29);
  data::Batch batch = RandomBatch(3, 4, 4, 31);
  std::string error;
  ag::GradCheckOptions options;
  options.max_elements_per_param = 6;
  // Model outputs are sums of many float32 terms; loosen slightly.
  options.rtol = 8e-2f;
  options.atol = 4e-3f;
  EXPECT_TRUE(ag::CheckGradients(
      [&] { return ag::BceWithLogits(model->Forward(batch), batch.y); },
      model->Parameters(), options, &error))
      << error;
}

INSTANTIATE_TEST_SUITE_P(
    Registry, AllModelsTest,
    ::testing::Values("LR", "FM", "AFM", "SAnD", "GRU", "RETAIN", "Dipole-l",
                      "Dipole-g", "Dipole-c", "StageNet", "GRU-D", "ConCare",
                      "ELDA-Net-T", "ELDA-Net-Fbi", "ELDA-Net-Fbi*",
                      "ELDA-Net-Ffm", "ELDA-Net-Ffm*", "ELDA-Net"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

// ---- Model-specific behaviour ---------------------------------------------------

TEST(RegistryTest, BaselineListMatchesPaper) {
  EXPECT_EQ(BaselineNames().size(), 12u);
  EXPECT_EQ(AllModelNames().size(), 16u);
}

TEST(RegistryDeathTest, UnknownNameAborts) {
  EXPECT_DEATH(MakeModel("GPT-7", 5, 1), "unknown model");
}

TEST(LrTest, EquivalentToLinearModelOnMeans) {
  // With weights set by hand, LR's logit must equal w . mean_t(x) + b.
  auto model = MakeModel("LR", 2, 1);
  auto params = model->Parameters();
  ASSERT_EQ(params.size(), 2u);
  *params[0].mutable_value() = Tensor::FromData({2, 1}, {2.0f, -1.0f});
  *params[1].mutable_value() = Tensor::FromData({1}, {0.5f});
  data::Batch batch = RandomBatch(1, 4, 2, 3);
  float mean0 = 0.0f, mean1 = 0.0f;
  for (int64_t t = 0; t < 4; ++t) {
    mean0 += batch.x.at({0, t, 0}) / 4.0f;
    mean1 += batch.x.at({0, t, 1}) / 4.0f;
  }
  const float expected = 2.0f * mean0 - mean1 + 0.5f;
  EXPECT_NEAR(model->Forward(batch).value()[0], expected, 1e-5f);
}

TEST(FmTest, PairwiseTermMatchesExplicitSum) {
  FactorizationMachine fm(3, 4, 7);
  auto named = fm.NamedParameters();
  Tensor factors;
  for (const auto& [name, var] : named) {
    if (name == "factors") factors = var.value();
  }
  data::Batch batch = RandomBatch(2, 3, 3, 9);
  Tensor logits = fm.Forward(batch).value();
  // Recompute naively: w0 + w.x + sum_{i<j} <v_i, v_j> x_i x_j  (w, w0 = 0).
  for (int64_t b = 0; b < 2; ++b) {
    std::vector<float> x(3, 0.0f);
    for (int64_t c = 0; c < 3; ++c) {
      for (int64_t t = 0; t < 3; ++t) x[c] += batch.x.at({b, t, c}) / 3.0f;
    }
    double expected = 0.0;
    for (int64_t i = 0; i < 3; ++i) {
      for (int64_t j = i + 1; j < 3; ++j) {
        double dot = 0.0;
        for (int64_t k = 0; k < 4; ++k) {
          dot += factors.at({i, k}) * factors.at({j, k});
        }
        expected += dot * x[i] * x[j];
      }
    }
    EXPECT_NEAR(logits[b], expected, 1e-4f);
  }
}

TEST(FmTest, CapturesMultiplicativeSignalLrCannot) {
  // y = 1[x0 * x1 > 0] with zero-mean marginals: LR stays at chance while FM
  // separates the classes.
  Rng rng(41);
  auto make = [&](int64_t n) {
    data::Batch b;
    b.x = Tensor::Normal({n, 1, 2}, 0.0f, 1.0f, &rng);
    b.mask = Tensor::Ones({n, 1, 2});
    b.delta = Tensor::Zeros({n, 1, 2});
    b.y = Tensor({n});
    for (int64_t i = 0; i < n; ++i) {
      b.y[i] = b.x.at({i, 0, 0}) * b.x.at({i, 0, 1}) > 0 ? 1.0f : 0.0f;
    }
    return b;
  };
  auto fm = MakeModel("FM", 2, 43);
  auto lr = MakeModel("LR", 2, 43);
  optim::Adam fm_opt(fm->Parameters(), 0.05f);
  optim::Adam lr_opt(lr->Parameters(), 0.05f);
  for (int step = 0; step < 200; ++step) {
    data::Batch batch = make(64);
    fm_opt.ZeroGrad();
    ag::BceWithLogits(fm->Forward(batch), batch.y).Backward();
    fm_opt.Step();
    lr_opt.ZeroGrad();
    ag::BceWithLogits(lr->Forward(batch), batch.y).Backward();
    lr_opt.Step();
  }
  data::Batch test = make(400);
  auto accuracy = [&](train::SequenceModel* m) {
    Tensor probs = Sigmoid(m->Forward(test).value());
    int64_t correct = 0;
    for (int64_t i = 0; i < 400; ++i) {
      correct += (probs[i] >= 0.5f) == (test.y[i] == 1.0f);
    }
    return static_cast<double>(correct) / 400.0;
  };
  EXPECT_GT(accuracy(fm.get()), 0.85);
  EXPECT_LT(accuracy(lr.get()), 0.65);
}

TEST(DipoleTest, AttentionSumsToOneAndIsExposed) {
  Dipole dipole(5, 8, DipoleAttention::kConcat, 51);
  data::Batch batch = RandomBatch(3, 6, 5, 53);
  nn::CaptureSink sink;
  nn::ForwardContext ctx;
  ctx.capture = &sink;
  dipole.Forward(batch, &ctx);
  const Tensor alpha = sink.Get("time_attention");
  ASSERT_EQ(alpha.shape(), (std::vector<int64_t>{3, 5}));
  for (int64_t b = 0; b < 3; ++b) {
    float sum = 0.0f;
    for (int64_t t = 0; t < 5; ++t) sum += alpha.at({b, t});
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(DipoleTest, VariantsHaveDistinctParameterisations) {
  auto l = MakeModel("Dipole-l", 6, 5);
  auto g = MakeModel("Dipole-g", 6, 5);
  auto c = MakeModel("Dipole-c", 6, 5);
  EXPECT_NE(l->NumParameters(), g->NumParameters());
  EXPECT_NE(g->NumParameters(), c->NumParameters());
}

TEST(GruDTest, UsesDeltaChannel) {
  // Changing only delta must change GRU-D's output (decay is active) while
  // leaving the plain GRU untouched.
  auto grud = MakeModel("GRU-D", 4, 61);
  auto gru = MakeModel("GRU", 4, 61);
  data::Batch batch = RandomBatch(2, 5, 4, 63);
  Tensor base_grud = grud->Forward(batch).value();
  Tensor base_gru = gru->Forward(batch).value();
  data::Batch modified = batch;
  modified.delta = AddScalar(batch.delta, 5.0f);
  EXPECT_GT(MaxAbsDiff(grud->Forward(modified).value(), base_grud), 1e-6f);
  EXPECT_NEAR(MaxAbsDiff(gru->Forward(modified).value(), base_gru), 0.0f,
              1e-7f);
}

TEST(GruDTest, ZeroDeltaFullMaskReducesDecayToIdentity) {
  // With everything observed and delta = 0: gamma = exp(0)... = 1 only when
  // the learned bias is 0 (it is at init), so x^ = x exactly.
  auto grud = MakeModel("GRU-D", 3, 67);
  data::Batch batch = RandomBatch(2, 4, 3, 69);
  batch.mask = Tensor::Ones({2, 4, 3});
  batch.delta = Tensor::Zeros({2, 4, 3});
  Tensor out = grud->Forward(batch).value();
  for (int64_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(std::isfinite(out[i]));
  }
}

TEST(ParameterScaleTest, RelativeOrderingMatchesTableThree) {
  // Table III: LR < FM < AFM ≪ RETAIN < GRU < GRU-D < Dipole variants,
  // StageNet and SAnD and ConCare are the big models.
  const int64_t features = 37;
  auto n = [&](const std::string& name) {
    return MakeModel(name, features, 1)->NumParameters();
  };
  EXPECT_EQ(n("LR"), 38);
  EXPECT_EQ(n("FM"), 630);
  EXPECT_EQ(n("AFM"), 718);
  EXPECT_LT(n("RETAIN"), n("GRU"));
  EXPECT_LT(n("GRU"), n("Dipole-g"));
  EXPECT_GT(n("SAnD"), 50000);
  EXPECT_GT(n("StageNet"), n("GRU"));
  EXPECT_GT(n("ELDA-Net"), n("ELDA-Net-T"));
  // The GRU baseline matches the paper's 20k.
  EXPECT_NEAR(static_cast<double>(n("GRU")), 20000.0, 1500.0);
}

}  // namespace
}  // namespace baselines
}  // namespace elda
