#include "train/checkpoint.h"

#include <cmath>
#include <fstream>
#include <string>

#include "data/pipeline.h"
#include "gtest/gtest.h"
#include "health/health.h"
#include "nn/gru.h"
#include "nn/linear.h"
#include "nn/serialize.h"
#include "train/trainer.h"

namespace elda {
namespace train {
namespace {

class TinyGruModel : public SequenceModel {
 public:
  TinyGruModel(int64_t features, int64_t hidden, uint64_t seed)
      : rng_(seed), gru_(features, hidden, &rng_), head_(hidden, 1, true,
                                                         &rng_) {
    RegisterSubmodule("gru", &gru_);
    RegisterSubmodule("head", &head_);
  }

  ag::Variable EncodeTerminal(const data::Batch& batch,
                              nn::ForwardContext*) const override {
    const int64_t b = batch.x.shape(0);
    const int64_t t = batch.x.shape(1);
    ag::Variable h = gru_.Forward(ag::Constant(batch.x));
    return ag::Reshape(ag::Slice(h, 1, t - 1, 1),
                       {b, gru_.cell().hidden_size()});
  }

  ag::Variable Readout(const ag::Variable& rep,
                       nn::ForwardContext*) const override {
    return ag::Reshape(head_.Forward(rep), {rep.value().shape(0)});
  }

  int64_t encoding_dim() const override { return gru_.cell().hidden_size(); }
  std::string name() const override { return "TinyGRU"; }

 private:
  Rng rng_;
  nn::Gru gru_;
  nn::Linear head_;
};

std::vector<data::PreparedSample> SeparableData(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<data::PreparedSample> prepared;
  for (int64_t i = 0; i < n; ++i) {
    data::PreparedSample p;
    p.x = Tensor::Normal({6, 3}, 0.0f, 1.0f, &rng);
    const float shift = rng.Bernoulli(0.5) ? 1.2f : -1.2f;
    for (int64_t t = 0; t < 6; ++t) p.x.at({t, 0}) += shift;
    p.mask = Tensor::Ones({6, 3});
    p.delta = Tensor::Zeros({6, 3});
    p.mortality_label = shift > 0.0f ? 1.0f : 0.0f;
    p.los_gt7_label = p.mortality_label;
    prepared.push_back(std::move(p));
  }
  return prepared;
}

data::SplitIndices EvenSplit(int64_t n) {
  data::SplitIndices split;
  for (int64_t i = 0; i < n; ++i) {
    if (i % 10 == 8) {
      split.val.push_back(i);
    } else if (i % 10 == 9) {
      split.test.push_back(i);
    } else {
      split.train.push_back(i);
    }
  }
  return split;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TrainerConfig BaseConfig() {
  TrainerConfig config;
  config.max_epochs = 6;
  config.batch_size = 32;
  config.learning_rate = 0.01f;
  return config;
}

// Keeps the global fault injector pristine around each test.
class FaultToleranceTest : public ::testing::Test {
 protected:
  void SetUp() override { health::GlobalFaultInjector()->Disarm(); }
  void TearDown() override { health::GlobalFaultInjector()->Disarm(); }
};

TEST(TrainCheckpointTest, SaveLoadRoundTrip) {
  const std::string path = TempPath("roundtrip.ckpt");
  Rng rng(17);
  TrainCheckpoint ckpt;
  ckpt.next_epoch = 4;
  ckpt.epochs_run = 4;
  ckpt.best_epoch = 2;
  ckpt.epochs_without_improvement = 1;
  ckpt.total_batches = 57;
  ckpt.recoveries = 1;
  ckpt.skipped_batches = 2;
  ckpt.best_val_auc_pr = 0.875;
  ckpt.best_val.bce = 0.31;
  ckpt.best_val.auc_roc = 0.9;
  ckpt.best_val.auc_pr = 0.875;
  ckpt.total_batch_seconds = 1.5;
  ckpt.params_blob = "opaque parameter bytes";
  ckpt.adam.step_count = 57;
  ckpt.adam.lr = 0.005f;
  ckpt.adam.m.push_back(Tensor::Normal({3, 4}, 0.0f, 1.0f, &rng));
  ckpt.adam.v.push_back(Tensor::Normal({3, 4}, 0.0f, 1.0f, &rng));
  ckpt.rng = rng.SaveState();
  ckpt.batch_order = {3, 0, 2, 1};
  ckpt.best_params.push_back(Tensor::Normal({2, 2}, 0.0f, 1.0f, &rng));

  std::string error;
  ASSERT_TRUE(SaveTrainCheckpoint(path, ckpt, &error)) << error;
  TrainCheckpoint loaded;
  ASSERT_TRUE(LoadTrainCheckpoint(path, &loaded, &error)) << error;

  EXPECT_EQ(loaded.next_epoch, 4);
  EXPECT_EQ(loaded.epochs_run, 4);
  EXPECT_EQ(loaded.best_epoch, 2);
  EXPECT_EQ(loaded.epochs_without_improvement, 1);
  EXPECT_EQ(loaded.total_batches, 57);
  EXPECT_EQ(loaded.recoveries, 1);
  EXPECT_EQ(loaded.skipped_batches, 2);
  EXPECT_DOUBLE_EQ(loaded.best_val_auc_pr, 0.875);
  EXPECT_DOUBLE_EQ(loaded.best_val.bce, 0.31);
  EXPECT_DOUBLE_EQ(loaded.total_batch_seconds, 1.5);
  EXPECT_EQ(loaded.params_blob, "opaque parameter bytes");
  EXPECT_EQ(loaded.adam.step_count, 57);
  EXPECT_FLOAT_EQ(loaded.adam.lr, 0.005f);
  ASSERT_EQ(loaded.adam.m.size(), 1u);
  for (int64_t i = 0; i < loaded.adam.m[0].size(); ++i) {
    EXPECT_EQ(loaded.adam.m[0][i], ckpt.adam.m[0][i]);
    EXPECT_EQ(loaded.adam.v[0][i], ckpt.adam.v[0][i]);
  }
  for (int i = 0; i < 4; ++i) EXPECT_EQ(loaded.rng.s[i], ckpt.rng.s[i]);
  EXPECT_EQ(loaded.batch_order, ckpt.batch_order);
  ASSERT_EQ(loaded.best_params.size(), 1u);
  for (int64_t i = 0; i < loaded.best_params[0].size(); ++i) {
    EXPECT_EQ(loaded.best_params[0][i], ckpt.best_params[0][i]);
  }
}

TEST(TrainCheckpointTest, LoadRejectsMissingFile) {
  TrainCheckpoint ckpt;
  std::string error;
  EXPECT_FALSE(
      LoadTrainCheckpoint(TempPath("does_not_exist.ckpt"), &ckpt, &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(FaultToleranceTest, KillAndResumeIsBitwiseIdentical) {
  auto prepared = SeparableData(200, 1);
  auto split = EvenSplit(200);

  // Uninterrupted reference run.
  TrainerConfig config_a = BaseConfig();
  config_a.checkpoint_path = TempPath("resume_a.ckpt");
  config_a.checkpoint_every = 1;
  TinyGruModel model_a(3, 8, 2);
  TrainResult result_a = Trainer(config_a).Train(&model_a, prepared, split,
                                                 data::Task::kMortality);
  ASSERT_EQ(result_a.status, health::TrainStatus::kOk);
  const std::string params_a = nn::EncodeParameters(model_a);

  // The same run "killed" after 3 of 6 epochs...
  TrainerConfig config_b = BaseConfig();
  config_b.checkpoint_path = TempPath("resume_b.ckpt");
  config_b.checkpoint_every = 1;
  config_b.max_epochs = 3;
  TinyGruModel model_b(3, 8, 2);  // same init seed as model_a
  TrainResult partial = Trainer(config_b).Train(&model_b, prepared, split,
                                                data::Task::kMortality);
  ASSERT_EQ(partial.epochs_run, 3);

  // ...and resumed into a freshly (differently) initialized model.
  config_b.max_epochs = 6;
  config_b.resume = true;
  TinyGruModel model_c(3, 8, 99);
  TrainResult result_b = Trainer(config_b).Train(&model_c, prepared, split,
                                                 data::Task::kMortality);

  EXPECT_EQ(nn::EncodeParameters(model_c), params_a);
  EXPECT_DOUBLE_EQ(result_b.val.auc_pr, result_a.val.auc_pr);
  EXPECT_DOUBLE_EQ(result_b.val.auc_roc, result_a.val.auc_roc);
  EXPECT_DOUBLE_EQ(result_b.val.bce, result_a.val.bce);
  EXPECT_DOUBLE_EQ(result_b.test.auc_pr, result_a.test.auc_pr);
  EXPECT_DOUBLE_EQ(result_b.test.auc_roc, result_a.test.auc_roc);
  EXPECT_DOUBLE_EQ(result_b.test.bce, result_a.test.bce);
  EXPECT_EQ(result_b.best_epoch, result_a.best_epoch);
  EXPECT_EQ(result_b.epochs_run, result_a.epochs_run);
  EXPECT_EQ(result_b.status, health::TrainStatus::kOk);
}

TEST_F(FaultToleranceTest, ResumeRejectsCheckpointFromDifferentSplit) {
  auto prepared = SeparableData(100, 3);
  auto split = EvenSplit(100);
  TrainerConfig config = BaseConfig();
  config.max_epochs = 1;
  config.checkpoint_path = TempPath("wrong_split.ckpt");
  config.checkpoint_every = 1;
  TinyGruModel model(3, 4, 4);
  ASSERT_EQ(Trainer(config)
                .Train(&model, prepared, split, data::Task::kMortality)
                .status,
            health::TrainStatus::kOk);

  // Same file, different train indices.
  data::SplitIndices other = split;
  other.train.pop_back();
  config.resume = true;
  TinyGruModel model2(3, 4, 5);
  TrainResult result = Trainer(config).Train(&model2, prepared, other,
                                             data::Task::kMortality);
  EXPECT_EQ(result.status, health::TrainStatus::kCheckpointError);
  EXPECT_NE(result.status_message.find("different train split"),
            std::string::npos);
}

TEST_F(FaultToleranceTest, BitFlippedCheckpointIsRejectedOnResume) {
  auto prepared = SeparableData(100, 3);
  auto split = EvenSplit(100);
  TrainerConfig config = BaseConfig();
  config.max_epochs = 2;
  config.checkpoint_path = TempPath("flipped.ckpt");
  config.checkpoint_every = 1;
  TinyGruModel model(3, 4, 4);
  ASSERT_EQ(Trainer(config)
                .Train(&model, prepared, split, data::Task::kMortality)
                .status,
            health::TrainStatus::kOk);

  std::string bytes = ReadFile(config.checkpoint_path);
  ASSERT_GT(bytes.size(), 50u);
  bytes[40] ^= 0x01;  // inside the first section's payload
  WriteFile(config.checkpoint_path, bytes);

  config.resume = true;
  TinyGruModel model2(3, 4, 5);
  TrainResult result = Trainer(config).Train(&model2, prepared, split,
                                             data::Task::kMortality);
  EXPECT_EQ(result.status, health::TrainStatus::kCheckpointError);
  EXPECT_NE(result.status_message.find("checksum mismatch"),
            std::string::npos)
      << result.status_message;
}

TEST_F(FaultToleranceTest, PoisonedGradientTriggersRollbackAndRecovers) {
  auto prepared = SeparableData(200, 1);
  auto split = EvenSplit(200);
  health::FaultPlan plan;
  plan.poison_grad_at_step = 7;
  health::GlobalFaultInjector()->Arm(plan);

  TrainerConfig config = BaseConfig();
  config.max_epochs = 4;
  TinyGruModel model(3, 8, 2);
  TrainResult result = Trainer(config).Train(&model, prepared, split,
                                             data::Task::kMortality);
  EXPECT_EQ(result.status, health::TrainStatus::kRecovered);
  EXPECT_EQ(result.recoveries, 1);
  EXPECT_EQ(result.skipped_batches, 0);
  EXPECT_EQ(result.epochs_run, 4);
  // The run still produced valid, finite metrics.
  EXPECT_TRUE(std::isfinite(result.test.bce));
  EXPECT_GT(result.test.auc_roc, 0.5);
}

TEST_F(FaultToleranceTest, SkipPolicyDropsThePoisonedBatch) {
  auto prepared = SeparableData(200, 1);
  auto split = EvenSplit(200);
  health::FaultPlan plan;
  plan.poison_grad_at_step = 3;
  health::GlobalFaultInjector()->Arm(plan);

  TrainerConfig config = BaseConfig();
  config.max_epochs = 2;
  config.health.policy = health::RecoveryPolicy::kSkipBatch;
  TinyGruModel model(3, 8, 2);
  TrainResult result = Trainer(config).Train(&model, prepared, split,
                                             data::Task::kMortality);
  EXPECT_EQ(result.status, health::TrainStatus::kRecovered);
  EXPECT_EQ(result.skipped_batches, 1);
  EXPECT_EQ(result.recoveries, 0);
  EXPECT_EQ(result.epochs_run, 2);
}

TEST_F(FaultToleranceTest, AbortPolicyReturnsStructuredStatus) {
  auto prepared = SeparableData(200, 1);
  auto split = EvenSplit(200);
  health::FaultPlan plan;
  plan.poison_grad_at_step = 3;
  health::GlobalFaultInjector()->Arm(plan);

  TrainerConfig config = BaseConfig();
  config.health.policy = health::RecoveryPolicy::kAbort;
  TinyGruModel model(3, 8, 2);
  TrainResult result = Trainer(config).Train(&model, prepared, split,
                                             data::Task::kMortality);
  EXPECT_EQ(result.status, health::TrainStatus::kAborted);
  EXPECT_NE(result.status_message.find("non-finite"), std::string::npos)
      << result.status_message;
  EXPECT_NE(result.status_message.find("step 3"), std::string::npos)
      << result.status_message;
}

TEST_F(FaultToleranceTest, FailedCheckpointWriteDoesNotStopTraining) {
  auto prepared = SeparableData(100, 3);
  auto split = EvenSplit(100);
  health::FaultPlan plan;
  plan.fail_write_at = 1;  // second checkpoint write fails
  health::GlobalFaultInjector()->Arm(plan);

  TrainerConfig config = BaseConfig();
  config.max_epochs = 3;
  config.checkpoint_path = TempPath("fail_write.ckpt");
  config.checkpoint_every = 1;
  TinyGruModel model(3, 4, 4);
  TrainResult result = Trainer(config).Train(&model, prepared, split,
                                             data::Task::kMortality);
  health::GlobalFaultInjector()->Disarm();
  EXPECT_EQ(result.status, health::TrainStatus::kOk);
  EXPECT_EQ(result.checkpoint_write_failures, 1);
  EXPECT_EQ(result.epochs_run, 3);
  // The surviving file is the epoch-3 write, still loadable.
  TrainCheckpoint ckpt;
  std::string error;
  ASSERT_TRUE(LoadTrainCheckpoint(config.checkpoint_path, &ckpt, &error))
      << error;
  EXPECT_EQ(ckpt.next_epoch, 3);
}

TEST_F(FaultToleranceTest, TornCheckpointWriteIsRejectedAtResume) {
  auto prepared = SeparableData(100, 3);
  auto split = EvenSplit(100);
  health::FaultPlan plan;
  plan.truncate_write_at = 0;
  health::GlobalFaultInjector()->Arm(plan);

  TrainerConfig config = BaseConfig();
  config.max_epochs = 1;
  config.checkpoint_path = TempPath("torn.ckpt");
  config.checkpoint_every = 1;
  TinyGruModel model(3, 4, 4);
  TrainResult result = Trainer(config).Train(&model, prepared, split,
                                             data::Task::kMortality);
  health::GlobalFaultInjector()->Disarm();
  EXPECT_EQ(result.checkpoint_write_failures, 1);

  config.resume = true;
  TinyGruModel model2(3, 4, 5);
  TrainResult resumed = Trainer(config).Train(&model2, prepared, split,
                                              data::Task::kMortality);
  EXPECT_EQ(resumed.status, health::TrainStatus::kCheckpointError);
  EXPECT_FALSE(resumed.status_message.empty());
}

}  // namespace
}  // namespace train
}  // namespace elda
