#include <cmath>
#include <string>

#include "autograd/gradcheck.h"
#include "core/elda.h"
#include "core/elda_net.h"
#include "core/embedding.h"
#include "core/feature_interaction.h"
#include "core/time_interaction.h"
#include "gtest/gtest.h"
#include "optim/optimizer.h"
#include "synth/simulator.h"
#include "tensor/tensor_ops.h"

namespace elda {
namespace core {
namespace {

ag::Variable RandomInput(std::vector<int64_t> shape, uint64_t seed,
                         float scale = 1.0f) {
  Rng rng(seed);
  return ag::Constant(Tensor::Normal(std::move(shape), 0.0f, scale, &rng));
}

Tensor FullMask(std::vector<int64_t> shape) { return Tensor::Ones(shape); }

// ---- Bi-directional embedding -------------------------------------------------

TEST(EmbeddingTest, OutputShape) {
  Rng rng(1);
  BiDirectionalEmbedding embedding(5, 8, EmbeddingVariant::kBiDirectional,
                                   -3.0f, 3.0f, true, &rng);
  ag::Variable x = RandomInput({2, 4, 5}, 2);
  Tensor e = embedding.Forward(x, FullMask({2, 4, 5})).value();
  EXPECT_EQ(e.shape(), (std::vector<int64_t>{2, 4, 5, 8}));
}

TEST(EmbeddingTest, AnchorsRecoverAnchorVectors) {
  // At x' = a the embedding equals V_b... no: per Eq. 2, at x' = a the
  // (x'-a) term vanishes, so e = V_b * (b-a)/(b-a) = V_b; at x' = b, e = V_a.
  Rng rng(3);
  BiDirectionalEmbedding embedding(2, 4, EmbeddingVariant::kBiDirectional,
                                   -3.0f, 3.0f, false, &rng);
  auto params = embedding.NamedParameters();
  ASSERT_EQ(params[0].first, "v_lower");
  ASSERT_EQ(params[1].first, "v_upper");
  const Tensor va = params[0].second.value();
  const Tensor vb = params[1].second.value();
  ag::Variable x_at_a = ag::Constant(Tensor::Full({1, 1, 2}, -3.0f));
  Tensor e_a = embedding.Forward(x_at_a, FullMask({1, 1, 2})).value();
  for (int64_t c = 0; c < 2; ++c) {
    for (int64_t k = 0; k < 4; ++k) {
      EXPECT_NEAR((e_a.at({0, 0, c, k})), (vb.at({c, k})), 1e-5f);
    }
  }
  ag::Variable x_at_b = ag::Constant(Tensor::Full({1, 1, 2}, 3.0f));
  Tensor e_b = embedding.Forward(x_at_b, FullMask({1, 1, 2})).value();
  for (int64_t c = 0; c < 2; ++c) {
    for (int64_t k = 0; k < 4; ++k) {
      EXPECT_NEAR((e_b.at({0, 0, c, k})), (va.at({c, k})), 1e-5f);
    }
  }
}

TEST(EmbeddingTest, ZeroValueIsNotZeroVector) {
  // The core advantage over FM embedding: a standardised-normal (0) value
  // still maps to an informative, midpoint embedding.
  Rng rng(4);
  BiDirectionalEmbedding bi(3, 6, EmbeddingVariant::kBiDirectional, -3.0f,
                            3.0f, false, &rng);
  Rng rng2(4);
  BiDirectionalEmbedding fm(3, 6, EmbeddingVariant::kFmLinear, -3.0f, 3.0f,
                            false, &rng2);
  ag::Variable zero = ag::Constant(Tensor::Zeros({1, 1, 3}));
  Tensor e_bi = bi.Forward(zero, FullMask({1, 1, 3})).value();
  Tensor e_fm = fm.Forward(zero, FullMask({1, 1, 3})).value();
  float norm_bi = 0.0f, norm_fm = 0.0f;
  for (int64_t i = 0; i < e_bi.size(); ++i) norm_bi += e_bi[i] * e_bi[i];
  for (int64_t i = 0; i < e_fm.size(); ++i) norm_fm += e_fm[i] * e_fm[i];
  EXPECT_NEAR(norm_fm, 0.0f, 1e-10f);  // FM collapses zeros
  EXPECT_GT(norm_bi, 0.01f);           // bi-directional does not
}

TEST(EmbeddingTest, BiEmbeddingScaleIsBoundedInValue) {
  // FM embedding norm grows linearly in |x'|; the bi-directional norm stays
  // on the order of the anchor vectors across the [a, b] range.
  Rng rng(5);
  BiDirectionalEmbedding bi(1, 8, EmbeddingVariant::kBiDirectional, -3.0f,
                            3.0f, false, &rng);
  auto norm_at = [&](float value) {
    ag::Variable x = ag::Constant(Tensor::Full({1, 1, 1}, value));
    Tensor e = bi.Forward(x, FullMask({1, 1, 1})).value();
    float n = 0.0f;
    for (int64_t i = 0; i < e.size(); ++i) n += e[i] * e[i];
    return std::sqrt(n);
  };
  const float n0 = norm_at(0.0f);
  const float n3 = norm_at(3.0f);
  const float n6 = norm_at(6.0f);
  // Unlike the FM embedding (norm 0 at x' = 0, unbounded linear growth with
  // a zero intercept), the bi-directional embedding keeps a non-trivial
  // vector at zero and only grows linearly through the anchor interval.
  EXPECT_GT(n0, 0.05f);
  EXPECT_LT(n6 / std::max(n3, 1e-3f), 3.0f);
}

TEST(EmbeddingTest, ContinuityInValue) {
  // Close values map to close embeddings (consecutive-embedding property).
  Rng rng(6);
  BiDirectionalEmbedding bi(2, 4, EmbeddingVariant::kBiDirectional, -3.0f,
                            3.0f, false, &rng);
  ag::Variable x1 = ag::Constant(Tensor::Full({1, 1, 2}, 1.0f));
  ag::Variable x2 = ag::Constant(Tensor::Full({1, 1, 2}, 1.01f));
  Tensor e1 = bi.Forward(x1, FullMask({1, 1, 2})).value();
  Tensor e2 = bi.Forward(x2, FullMask({1, 1, 2})).value();
  EXPECT_LT(MaxAbsDiff(e1, e2), 0.05f);
}

TEST(EmbeddingTest, StarVariantMapsZeroToOnes) {
  Rng rng(7);
  BiDirectionalEmbedding fm_star(2, 3, EmbeddingVariant::kFmLinearStar, -3.0f,
                                 3.0f, false, &rng);
  Tensor xv({1, 1, 2});
  xv.at({0, 0, 0}) = 0.0f;
  xv.at({0, 0, 1}) = 2.0f;
  Tensor e = fm_star.Forward(ag::Constant(xv), FullMask({1, 1, 2})).value();
  for (int64_t k = 0; k < 3; ++k) {
    EXPECT_FLOAT_EQ((e.at({0, 0, 0, k})), 1.0f);   // zero -> ones
    EXPECT_NE((e.at({0, 0, 1, k})), 1.0f);         // non-zero -> linear
  }
}

TEST(EmbeddingTest, StarVariantBreaksContinuity) {
  // The paper attributes ELDA-Net-F_bi*'s degradation to this discontinuity.
  Rng rng(8);
  BiDirectionalEmbedding bi_star(1, 4, EmbeddingVariant::kBiDirectionalStar,
                                 -3.0f, 3.0f, false, &rng);
  Tensor at_zero = bi_star
                       .Forward(ag::Constant(Tensor::Zeros({1, 1, 1})),
                                FullMask({1, 1, 1}))
                       .value();
  Tensor near_zero = bi_star
                         .Forward(ag::Constant(Tensor::Full({1, 1, 1}, 0.05f)),
                                  FullMask({1, 1, 1}))
                         .value();
  EXPECT_GT(MaxAbsDiff(at_zero, near_zero), 0.2f);
}

TEST(EmbeddingTest, NeverObservedFeatureUsesMissingVector) {
  Rng rng(9);
  BiDirectionalEmbedding embedding(2, 3, EmbeddingVariant::kBiDirectional,
                                   -3.0f, 3.0f, true, &rng);
  Tensor vm;
  for (const auto& [name, var] : embedding.NamedParameters()) {
    if (name == "v_missing") vm = var.value();
  }
  ASSERT_TRUE(vm.defined());
  // Feature 0 observed at t=1; feature 1 never observed.
  Tensor mask({1, 2, 2});
  mask.at({0, 1, 0}) = 1.0f;
  Tensor e = embedding.Forward(RandomInput({1, 2, 2}, 10), mask).value();
  for (int64_t t = 0; t < 2; ++t) {
    for (int64_t k = 0; k < 3; ++k) {
      EXPECT_FLOAT_EQ((e.at({0, t, 1, k})), (vm.at({1, k})));
    }
  }
  // Feature 0 does NOT use the missing vector.
  bool differs = false;
  for (int64_t k = 0; k < 3; ++k) {
    if (std::fabs(e.at({0, 0, 0, k}) - vm.at({0, k})) > 1e-4f) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(EmbeddingTest, GradCheckBiVariant) {
  Rng rng(11);
  BiDirectionalEmbedding embedding(3, 4, EmbeddingVariant::kBiDirectional,
                                   -3.0f, 3.0f, true, &rng);
  ag::Variable x = RandomInput({2, 3, 3}, 12);
  Tensor mask = Tensor::Ones({2, 3, 3});
  mask.at({0, 0, 1}) = 0.0f;  // partially observed
  std::string error;
  EXPECT_TRUE(ag::CheckGradients(
      [&] { return ag::SumAll(ag::Square(embedding.Forward(x, mask))); },
      embedding.Parameters(), {}, &error))
      << error;
}

TEST(EmbeddingTest, ParameterCountsPerVariant) {
  Rng rng(13);
  BiDirectionalEmbedding bi(37, 24, EmbeddingVariant::kBiDirectional, -3, 3,
                            true, &rng);
  EXPECT_EQ(bi.NumParameters(), 3 * 37 * 24);  // V_a, V_b, V_m
  BiDirectionalEmbedding fm(37, 24, EmbeddingVariant::kFmLinear, -3, 3, false,
                            &rng);
  EXPECT_EQ(fm.NumParameters(), 37 * 24);
}

// ---- Feature-level interaction -------------------------------------------------

// Naive O(C^2 E) reference implementing Eqs. 3-6 literally, used to verify
// the factored implementation.
Tensor NaiveFeatureInteraction(const Tensor& e, const Tensor& w_alpha,
                               const Tensor& b_alpha, const Tensor& p,
                               Tensor* alpha_out) {
  const int64_t B = e.shape(0), T = e.shape(1), C = e.shape(2),
                E = e.shape(3);
  const int64_t D = p.shape(1);
  Tensor out({B, T, C * D});
  *alpha_out = Tensor({B, T, C, C});
  for (int64_t b = 0; b < B; ++b) {
    for (int64_t t = 0; t < T; ++t) {
      for (int64_t i = 0; i < C; ++i) {
        // Scores over j != i.
        std::vector<double> scores(C, 0.0);
        double max_score = -1e30;
        for (int64_t j = 0; j < C; ++j) {
          if (j == i) continue;
          double s = b_alpha[i];
          for (int64_t k = 0; k < E; ++k) {
            s += w_alpha.at({i, k}) * e.at({b, t, i, k}) * e.at({b, t, j, k});
          }
          scores[j] = s;
          max_score = std::max(max_score, s);
        }
        double z = 0.0;
        for (int64_t j = 0; j < C; ++j) {
          if (j == i) continue;
          z += std::exp(scores[j] - max_score);
        }
        std::vector<double> alpha(C, 0.0);
        for (int64_t j = 0; j < C; ++j) {
          if (j == i) continue;
          alpha[j] = std::exp(scores[j] - max_score) / z;
          alpha_out->at({b, t, i, j}) = static_cast<float>(alpha[j]);
        }
        // c_i = sum_j alpha_ij (e_i ⊙ e_j); f_i = p^T relu([e_i ; c_i]).
        std::vector<double> c(E, 0.0);
        for (int64_t j = 0; j < C; ++j) {
          if (j == i) continue;
          for (int64_t k = 0; k < E; ++k) {
            c[k] += alpha[j] * e.at({b, t, i, k}) * e.at({b, t, j, k});
          }
        }
        for (int64_t d = 0; d < D; ++d) {
          double f = 0.0;
          for (int64_t k = 0; k < E; ++k) {
            const double ek = std::max<double>(e.at({b, t, i, k}), 0.0);
            f += ek * p.at({k, d});
          }
          for (int64_t k = 0; k < E; ++k) {
            const double ck = std::max(c[k], 0.0);
            f += ck * p.at({E + k, d});
          }
          out.at({b, t, i * D + d}) = static_cast<float>(f);
        }
      }
    }
  }
  return out;
}

TEST(FeatureInteractionTest, FactoredMatchesNaiveReference) {
  Rng rng(14);
  FeatureInteraction module(5, 6, 3, &rng);
  auto named = module.NamedParameters();
  Tensor w_alpha, b_alpha, p;
  for (const auto& [name, var] : named) {
    if (name == "w_alpha") w_alpha = var.value();
    if (name == "b_alpha") b_alpha = var.value();
    if (name == "p") p = var.value();
  }
  Rng data_rng(15);
  Tensor e = Tensor::Normal({2, 3, 5, 6}, 0.0f, 0.7f, &data_rng);
  nn::CaptureSink sink;
  nn::ForwardContext ctx;
  ctx.capture = &sink;
  ag::Variable out = module.Forward(ag::Constant(e), &ctx);
  Tensor alpha_ref;
  Tensor out_ref = NaiveFeatureInteraction(e, w_alpha, b_alpha, p, &alpha_ref);
  EXPECT_TRUE(AllClose(out.value(), out_ref, 1e-4f, 1e-3f));
  // Attention matches too (diagonal is zero in both).
  EXPECT_TRUE(
      AllClose(sink.Get("feature_attention"), alpha_ref, 1e-5f, 1e-4f));
}

TEST(FeatureInteractionTest, AttentionRowsSumToOneOffDiagonal) {
  Rng rng(16);
  FeatureInteraction module(7, 4, 2, &rng);
  nn::CaptureSink sink;
  nn::ForwardContext ctx;
  ctx.capture = &sink;
  module.Forward(RandomInput({3, 5, 7, 4}, 17), &ctx);
  const Tensor alpha = sink.Get("feature_attention");
  for (int64_t b = 0; b < 3; ++b) {
    for (int64_t t = 0; t < 5; ++t) {
      for (int64_t i = 0; i < 7; ++i) {
        EXPECT_NEAR((alpha.at({b, t, i, i})), 0.0f, 1e-6f);
        float row = 0.0f;
        for (int64_t j = 0; j < 7; ++j) row += alpha.at({b, t, i, j});
        EXPECT_NEAR(row, 1.0f, 1e-4f);
      }
    }
  }
}

TEST(FeatureInteractionTest, AttentionIsAsymmetric) {
  // alpha_ij (processing i) need not equal alpha_ji (processing j) — the
  // paper highlights this (pH attends to Lactate more than vice versa).
  Rng rng(18);
  FeatureInteraction module(4, 5, 2, &rng);
  nn::CaptureSink sink;
  nn::ForwardContext ctx;
  ctx.capture = &sink;
  module.Forward(RandomInput({1, 1, 4, 5}, 19), &ctx);
  const Tensor alpha = sink.Get("feature_attention");
  float max_gap = 0.0f;
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      max_gap = std::max(max_gap, std::fabs(alpha.at({0, 0, i, j}) -
                                            alpha.at({0, 0, j, i})));
    }
  }
  EXPECT_GT(max_gap, 1e-3f);
}

TEST(FeatureInteractionTest, OutputShapeUsesCompressionFactor) {
  Rng rng(20);
  FeatureInteraction module(6, 8, 4, &rng);
  ag::Variable out = module.Forward(RandomInput({2, 3, 6, 8}, 21));
  EXPECT_EQ(out.value().shape(), (std::vector<int64_t>{2, 3, 24}));
  EXPECT_EQ(module.output_dim(), 24);
}

TEST(FeatureInteractionTest, GradCheck) {
  Rng rng(22);
  FeatureInteraction module(4, 3, 2, &rng);
  ag::Variable e = RandomInput({2, 2, 4, 3}, 23, 0.7f);
  std::string error;
  ag::GradCheckOptions options;
  options.max_elements_per_param = 16;
  EXPECT_TRUE(ag::CheckGradients(
      [&] { return ag::SumAll(ag::Square(module.Forward(e))); },
      module.Parameters(), options, &error))
      << error;
}

// ---- Time-level interaction ----------------------------------------------------

TEST(TimeInteractionTest, OutputShapeAndAttention) {
  Rng rng(24);
  TimeInteraction module(6, 5, &rng);
  nn::CaptureSink sink;
  nn::ForwardContext ctx;
  ctx.capture = &sink;
  ag::Variable out = module.Forward(RandomInput({3, 8, 6}, 25), &ctx);
  EXPECT_EQ(out.value().shape(), (std::vector<int64_t>{3, 10}));
  const Tensor beta = sink.Get("time_attention");
  EXPECT_EQ(beta.shape(), (std::vector<int64_t>{3, 7}));
  for (int64_t b = 0; b < 3; ++b) {
    float row = 0.0f;
    for (int64_t t = 0; t < 7; ++t) {
      EXPECT_GE((beta.at({b, t})), 0.0f);
      row += beta.at({b, t});
    }
    EXPECT_NEAR(row, 1.0f, 1e-5f);
  }
}

TEST(TimeInteractionTest, DeterministicAndConsistentAcrossCalls) {
  Rng rng(26);
  TimeInteraction module(4, 3, &rng);
  ag::Variable x = RandomInput({2, 6, 4}, 27);
  nn::CaptureSink sink1, sink2;
  nn::ForwardContext ctx1, ctx2;
  ctx1.capture = &sink1;
  ctx2.capture = &sink2;
  Tensor out1 = module.Forward(x, &ctx1).value();
  Tensor beta1 = sink1.Get("time_attention").Clone();
  Tensor out2 = module.Forward(x, &ctx2).value();
  EXPECT_TRUE(AllClose(out1, out2));
  EXPECT_TRUE(AllClose(beta1, sink2.Get("time_attention")));
}

TEST(TimeInteractionTest, UniformHiddenStatesGiveUniformAttention) {
  // If every earlier step's interaction with the last step is identical,
  // the softmax must spread weight uniformly.
  Rng rng(260);
  TimeInteraction module(4, 3, &rng);
  // Constant input over time leads to h_t converging, but not exactly equal;
  // instead feed a 2-step sequence where T-1 = 1 so there is one weight.
  ag::Variable x = RandomInput({2, 2, 4}, 261);
  nn::CaptureSink sink;
  nn::ForwardContext ctx;
  ctx.capture = &sink;
  module.Forward(x, &ctx);
  const Tensor beta = sink.Get("time_attention");
  ASSERT_EQ(beta.shape(), (std::vector<int64_t>{2, 1}));
  EXPECT_NEAR((beta.at({0, 0})), 1.0f, 1e-6f);
}

TEST(TimeInteractionTest, GradCheck) {
  Rng rng(28);
  TimeInteraction module(3, 4, &rng);
  ag::Variable x = RandomInput({2, 4, 3}, 29);
  std::string error;
  ag::GradCheckOptions options;
  options.max_elements_per_param = 16;
  EXPECT_TRUE(ag::CheckGradients(
      [&] { return ag::SumAll(ag::Square(module.Forward(x))); },
      module.Parameters(), options, &error))
      << error;
}

// ---- ELDA-Net ---------------------------------------------------------------------

data::Batch TinyBatch(int64_t batch, int64_t steps, int64_t features,
                      uint64_t seed) {
  Rng rng(seed);
  data::Batch b;
  b.x = Tensor::Normal({batch, steps, features}, 0.0f, 1.0f, &rng);
  b.mask = Tensor({batch, steps, features});
  for (int64_t i = 0; i < b.mask.size(); ++i) {
    b.mask[i] = rng.Bernoulli(0.4) ? 1.0f : 0.0f;
  }
  b.delta = Tensor::Zeros({batch, steps, features});
  b.y = Tensor({batch});
  for (int64_t i = 0; i < batch; ++i) {
    b.y[i] = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
  }
  return b;
}

EldaNetConfig SmallConfig() {
  EldaNetConfig config;
  config.num_features = 6;
  config.embed_dim = 5;
  config.compression = 2;
  config.hidden_dim = 7;
  return config;
}

TEST(EldaNetTest, ForwardShapesForAllVariants) {
  const EldaNetConfig variants[] = {
      EldaNetConfig::Full(),       EldaNetConfig::VariantT(),
      EldaNetConfig::VariantFBi(), EldaNetConfig::VariantFBiStar(),
      EldaNetConfig::VariantFFm(), EldaNetConfig::VariantFFmStar(),
  };
  data::Batch batch = TinyBatch(3, 5, 6, 31);
  for (const EldaNetConfig& base : variants) {
    EldaNetConfig config = base;
    config.num_features = 6;
    config.embed_dim = 5;
    config.compression = 2;
    config.hidden_dim = 7;
    EldaNet net(config);
    Tensor logits = net.Forward(batch).value();
    EXPECT_EQ(logits.shape(), (std::vector<int64_t>{3}))
        << config.display_name;
    for (int64_t i = 0; i < 3; ++i) EXPECT_TRUE(std::isfinite(logits[i]));
  }
}

TEST(EldaNetTest, VariantNamesMatchPaper) {
  EXPECT_EQ(EldaNetConfig::Full().display_name, "ELDA-Net");
  EXPECT_EQ(EldaNetConfig::VariantT().display_name, "ELDA-Net-T");
  EXPECT_EQ(EldaNetConfig::VariantFBi().display_name, "ELDA-Net-Fbi");
  EXPECT_EQ(EldaNetConfig::VariantFFmStar().display_name, "ELDA-Net-Ffm*");
}

TEST(EldaNetTest, FullModelExposesBothAttentions) {
  EldaNetConfig config = SmallConfig();
  EldaNet net(config);
  data::Batch batch = TinyBatch(2, 4, 6, 32);
  nn::CaptureSink sink;
  nn::ForwardContext ctx;
  ctx.capture = &sink;
  net.Forward(batch, &ctx);
  EXPECT_EQ(sink.Get("feature_attention").shape(),
            (std::vector<int64_t>{2, 4, 6, 6}));
  EXPECT_EQ(sink.Get("time_attention").shape(), (std::vector<int64_t>{2, 3}));
}

TEST(EldaNetTest, VariantTCapturesNoFeatureAttention) {
  EldaNetConfig config = SmallConfig();
  config.use_feature_module = false;
  EldaNet net(config);
  data::Batch batch = TinyBatch(2, 4, 6, 320);
  nn::CaptureSink sink;
  nn::ForwardContext ctx;
  ctx.capture = &sink;
  net.Forward(batch, &ctx);
  EXPECT_FALSE(sink.Contains("feature_attention"));
  EXPECT_TRUE(sink.Contains("time_attention"));
}

TEST(EldaNetTest, GradCheckFullModelSmall) {
  EldaNetConfig config;
  config.num_features = 3;
  config.embed_dim = 3;
  config.compression = 2;
  config.hidden_dim = 3;
  EldaNet net(config);
  data::Batch batch = TinyBatch(2, 3, 3, 33);
  std::string error;
  ag::GradCheckOptions options;
  options.max_elements_per_param = 8;
  EXPECT_TRUE(ag::CheckGradients(
      [&] { return ag::BceWithLogits(net.Forward(batch), batch.y); },
      net.Parameters(), options, &error))
      << error;
}

TEST(EldaNetTest, ParameterCountNearPaperScale) {
  // Paper Table III reports 53k for ELDA-Net at the experiment
  // hyper-parameters; the architectural count lands in the same bracket.
  EldaNet net(EldaNetConfig::Full());
  EXPECT_GT(net.NumParameters(), 40000);
  EXPECT_LT(net.NumParameters(), 70000);
}

TEST(EldaNetTest, VariantTIsSmallerThanFull) {
  EldaNet full(EldaNetConfig::Full());
  EldaNet t_only(EldaNetConfig::VariantT());
  EXPECT_LT(t_only.NumParameters(), full.NumParameters() / 2);
}

TEST(EldaNetTest, LearnsInteractionSignal) {
  // A task a linear-in-marginals model cannot solve: the label is the XOR-ish
  // product structure y = 1[x0 * x1 > 0] at the final step. The full model
  // with explicit interactions should fit it quickly.
  EldaNetConfig config;
  config.num_features = 2;
  config.embed_dim = 6;
  config.compression = 3;
  config.hidden_dim = 8;
  EldaNet net(config);

  Rng rng(35);
  auto make_batch = [&](int64_t n) {
    data::Batch b;
    b.x = Tensor::Normal({n, 3, 2}, 0.0f, 1.0f, &rng);
    b.mask = Tensor::Ones({n, 3, 2});
    b.delta = Tensor::Zeros({n, 3, 2});
    b.y = Tensor({n});
    for (int64_t i = 0; i < n; ++i) {
      const float prod = b.x.at({i, 2, 0}) * b.x.at({i, 2, 1});
      b.y[i] = prod > 0.0f ? 1.0f : 0.0f;
    }
    return b;
  };

  optim::Adam adam(net.Parameters(), 0.01f);
  for (int step = 0; step < 150; ++step) {
    data::Batch batch = make_batch(64);
    adam.ZeroGrad();
    ag::BceWithLogits(net.Forward(batch), batch.y).Backward();
    adam.Step();
  }
  // Evaluate accuracy on fresh data.
  data::Batch test = make_batch(256);
  Tensor probs = Sigmoid(net.Forward(test).value());
  int64_t correct = 0;
  for (int64_t i = 0; i < 256; ++i) {
    correct += (probs[i] >= 0.5f) == (test.y[i] == 1.0f);
  }
  EXPECT_GT(correct, 200);  // well above the 50% chance level
}

// ---- ELDA framework ------------------------------------------------------------------

EldaConfig TinyEldaConfig() {
  EldaConfig config;
  config.net = EldaNetConfig::Full();
  config.net.embed_dim = 6;
  config.net.compression = 2;
  config.net.hidden_dim = 12;
  config.trainer.max_epochs = 2;
  config.trainer.batch_size = 32;
  return config;
}

TEST(EldaFrameworkTest, FitPredictInterpretRoundTrip) {
  synth::CohortConfig cohort_config = synth::SynthPhysioNet2012();
  cohort_config.num_admissions = 160;
  data::EmrDataset cohort = synth::GenerateCohort(cohort_config);

  Elda elda(TinyEldaConfig());
  EXPECT_FALSE(elda.fitted());
  train::TrainResult result = elda.Fit(cohort, data::Task::kMortality);
  EXPECT_TRUE(elda.fitted());
  EXPECT_GT(result.epochs_run, 0);
  EXPECT_GT(result.test.auc_roc, 0.0);
  EXPECT_LT(result.test.bce, 5.0);

  // Prediction on new admissions.
  synth::CohortConfig new_config = cohort_config;
  new_config.num_admissions = 10;
  new_config.seed = 777;
  data::EmrDataset incoming = synth::GenerateCohort(new_config);
  std::vector<data::EmrSample> new_samples(incoming.samples().begin(),
                                           incoming.samples().end());
  std::vector<float> risks = elda.PredictRisk(new_samples);
  ASSERT_EQ(risks.size(), 10u);
  for (float r : risks) {
    EXPECT_GE(r, 0.0f);
    EXPECT_LE(r, 1.0f);
  }
  std::vector<bool> alerts = elda.TriggerAlerts(new_samples);
  ASSERT_EQ(alerts.size(), 10u);

  // Interpretation of the showcase DLA patient.
  Elda::Interpretation interp =
      elda.Interpret(synth::MakeDlaShowcasePatient());
  EXPECT_EQ(interp.feature_attention.shape(),
            (std::vector<int64_t>{48, 37, 37}));
  EXPECT_EQ(interp.time_attention.shape(), (std::vector<int64_t>{47}));
  float beta_sum = 0.0f;
  for (int64_t i = 0; i < 47; ++i) beta_sum += interp.time_attention[i];
  EXPECT_NEAR(beta_sum, 1.0f, 1e-4f);
}

TEST(EldaFrameworkTest, SaveLoadRestoresDeployment) {
  synth::CohortConfig cohort_config = synth::SynthPhysioNet2012();
  cohort_config.num_admissions = 120;
  data::EmrDataset cohort = synth::GenerateCohort(cohort_config);

  EldaConfig config = TinyEldaConfig();
  config.trainer.max_epochs = 1;
  Elda trained(config);
  trained.Fit(cohort, data::Task::kMortality);
  const std::string path = testing::TempDir() + "/elda_deploy.eldaw";
  std::string error;
  ASSERT_TRUE(trained.Save(path, &error)) << error;

  // A fresh framework (same architecture config) restores the deployment
  // without ever seeing the training data.
  Elda restored(config);
  ASSERT_TRUE(restored.Load(path, &error)) << error;
  EXPECT_TRUE(restored.fitted());

  synth::CohortConfig new_config = cohort_config;
  new_config.num_admissions = 6;
  new_config.seed = 909;
  data::EmrDataset incoming = synth::GenerateCohort(new_config);
  std::vector<data::EmrSample> patients(incoming.samples().begin(),
                                        incoming.samples().end());
  std::vector<float> a = trained.PredictRisk(patients);
  std::vector<float> b = restored.PredictRisk(patients);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-6f);

  // Interpretations survive the round trip too.
  data::EmrSample showcase = synth::MakeDlaShowcasePatient();
  Elda::Interpretation ia = trained.Interpret(showcase);
  Elda::Interpretation ib = restored.Interpret(showcase);
  EXPECT_TRUE(AllClose(ia.feature_attention, ib.feature_attention));
  EXPECT_TRUE(AllClose(ia.time_attention, ib.time_attention));
}

TEST(EldaFrameworkTest, SaveBeforeFitFails) {
  Elda elda(TinyEldaConfig());
  std::string error;
  EXPECT_FALSE(elda.Save(testing::TempDir() + "/nofit.eldaw", &error));
  EXPECT_NE(error.find("unfitted"), std::string::npos);
}

TEST(EldaFrameworkDeathTest, PredictBeforeFitAborts) {
  Elda elda(TinyEldaConfig());
  EXPECT_DEATH(elda.PredictRisk({synth::MakeDlaShowcasePatient()}),
               "call Fit");
}

}  // namespace
}  // namespace core
}  // namespace elda
