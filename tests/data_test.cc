#include <set>
#include <vector>

#include "data/emr.h"
#include "data/pipeline.h"
#include "gtest/gtest.h"
#include "tensor/tensor_ops.h"

namespace elda {
namespace data {
namespace {

// Builds a tiny two-feature dataset with a deterministic pattern.
EmrDataset TinyDataset() {
  EmrDataset dataset({"A", "B"}, /*num_steps=*/4);
  // Sample 0: feature A observed at t=0 (10) and t=2 (20); B observed at
  // t=1 (5). Mortality positive.
  EmrSample s0(4, 2);
  s0.value(0, 0) = 10.0f;
  s0.set_observed(0, 0, true);
  s0.value(2, 0) = 20.0f;
  s0.set_observed(2, 0, true);
  s0.value(1, 1) = 5.0f;
  s0.set_observed(1, 1, true);
  s0.mortality_label = 1.0f;
  s0.los_gt7_label = 0.0f;
  dataset.Add(s0);
  // Sample 1: A observed at t=1 (30); B never observed. Negative labels.
  EmrSample s1(4, 2);
  s1.value(1, 0) = 30.0f;
  s1.set_observed(1, 0, true);
  s1.los_gt7_label = 1.0f;
  dataset.Add(s1);
  return dataset;
}

TEST(EmrSampleTest, RecordCounting) {
  EmrDataset d = TinyDataset();
  EXPECT_EQ(d.sample(0).NumRecords(), 3);
  EXPECT_EQ(d.sample(1).NumRecords(), 1);
}

TEST(EmrSampleTest, TruncateToHourClearsLaterObservations) {
  EmrDataset d = TinyDataset();
  EmrSample truncated = TruncateToHour(d.sample(0), 2);
  // Observations before hour 2 survive; at/after hour 2 are cleared.
  EXPECT_TRUE(truncated.is_observed(0, 0));
  EXPECT_TRUE(truncated.is_observed(1, 1));
  EXPECT_FALSE(truncated.is_observed(2, 0));
  EXPECT_EQ(truncated.NumRecords(), 2);
  // Labels and dimensions preserved.
  EXPECT_EQ(truncated.mortality_label, d.sample(0).mortality_label);
  EXPECT_EQ(truncated.num_steps, 4);
}

TEST(EmrSampleTest, TruncateToFullLengthIsIdentity) {
  EmrDataset d = TinyDataset();
  EmrSample same = TruncateToHour(d.sample(0), 4);
  EXPECT_EQ(same.values, d.sample(0).values);
  EXPECT_EQ(same.observed, d.sample(0).observed);
}

TEST(EmrSampleTest, TruncateToZeroClearsEverything) {
  EmrDataset d = TinyDataset();
  EXPECT_EQ(TruncateToHour(d.sample(0), 0).NumRecords(), 0);
}

TEST(EmrDatasetTest, TableOneStatistics) {
  EmrDataset d = TinyDataset();
  EXPECT_EQ(d.size(), 2);
  EXPECT_EQ(d.CountMortality(), 1);
  EXPECT_EQ(d.CountLosGt7(), 1);
  EXPECT_DOUBLE_EQ(d.AvgRecordsPerPatient(), 2.0);
  EXPECT_DOUBLE_EQ(d.MissingRate(), 1.0 - 4.0 / 16.0);
}

TEST(SplitTest, PartitionsWithoutOverlap) {
  Rng rng(1);
  SplitIndices split = SplitDataset(100, 0.8, 0.1, &rng);
  EXPECT_EQ(split.train.size(), 80u);
  EXPECT_EQ(split.val.size(), 10u);
  EXPECT_EQ(split.test.size(), 10u);
  std::set<int64_t> all;
  for (int64_t i : split.train) all.insert(i);
  for (int64_t i : split.val) all.insert(i);
  for (int64_t i : split.test) all.insert(i);
  EXPECT_EQ(all.size(), 100u);
}

TEST(SplitTest, StratifiedKeepsClassRatioInEveryPartition) {
  std::vector<float> labels(200, 0.0f);
  for (int i = 0; i < 20; ++i) labels[i * 10] = 1.0f;  // 10% positives
  Rng rng(5);
  SplitIndices split = StratifiedSplit(labels, 0.8, 0.1, &rng);
  auto count_pos = [&](const std::vector<int64_t>& idx) {
    int64_t p = 0;
    for (int64_t i : idx) p += labels[i] == 1.0f;
    return p;
  };
  EXPECT_EQ(count_pos(split.train), 16);
  EXPECT_EQ(count_pos(split.val), 2);
  EXPECT_EQ(count_pos(split.test), 2);
  EXPECT_EQ(split.train.size() + split.val.size() + split.test.size(), 200u);
}

TEST(SplitTest, StratifiedPartitionsAreDisjoint) {
  std::vector<float> labels(50, 0.0f);
  labels[3] = labels[7] = labels[11] = labels[20] = labels[33] = 1.0f;
  Rng rng(6);
  SplitIndices split = StratifiedSplit(labels, 0.6, 0.2, &rng);
  std::set<int64_t> all;
  for (int64_t i : split.train) all.insert(i);
  for (int64_t i : split.val) all.insert(i);
  for (int64_t i : split.test) all.insert(i);
  EXPECT_EQ(all.size(), 50u);
}

TEST(SplitTest, DeterministicForFixedSeed) {
  Rng rng1(7), rng2(7);
  SplitIndices a = SplitDataset(50, 0.8, 0.1, &rng1);
  SplitIndices b = SplitDataset(50, 0.8, 0.1, &rng2);
  EXPECT_EQ(a.train, b.train);
  EXPECT_EQ(a.test, b.test);
}

TEST(StandardizerTest, FitsOnObservedTrainCellsOnly) {
  EmrDataset d = TinyDataset();
  Standardizer standardizer;
  standardizer.Fit(d, {0});  // train = sample 0 only
  // Feature A observed values in train: 10, 20 -> mean 15, std 5.
  EXPECT_FLOAT_EQ(standardizer.mean(0), 15.0f);
  EXPECT_FLOAT_EQ(standardizer.stddev(0), 5.0f);
  // Feature B: single value 5 -> mean 5, std ~0 (clamped positive).
  EXPECT_FLOAT_EQ(standardizer.mean(1), 5.0f);
  EXPECT_GT(standardizer.stddev(1), 0.0f);
}

TEST(StandardizerTest, ApplyStandardisesObservedAndZeroesUnobserved) {
  EmrDataset d = TinyDataset();
  Standardizer standardizer;
  standardizer.Fit(d, {0});
  EmrSample s = d.sample(0);
  standardizer.Apply(&s);
  EXPECT_FLOAT_EQ(s.value(0, 0), -1.0f);  // (10-15)/5
  EXPECT_FLOAT_EQ(s.value(2, 0), 1.0f);   // (20-15)/5
  EXPECT_FLOAT_EQ(s.value(1, 0), 0.0f);   // unobserved
}

TEST(StandardizerTest, CleansNegativeObservations) {
  EmrDataset dataset({"A"}, 2);
  EmrSample s(2, 1);
  s.value(0, 0) = 10.0f;
  s.set_observed(0, 0, true);
  s.value(1, 0) = -5.0f;  // recording error
  s.set_observed(1, 0, true);
  dataset.Add(s);
  Standardizer standardizer;
  standardizer.Fit(dataset, {0});
  EXPECT_FLOAT_EQ(standardizer.mean(0), 10.0f);  // -5 excluded
  EmrSample applied = dataset.sample(0);
  standardizer.Apply(&applied);
  EXPECT_FALSE(applied.is_observed(1, 0));  // dropped from the mask
}

TEST(StandardizerTest, NeverObservedFeatureKeepsIdentityStats) {
  EmrDataset d = TinyDataset();
  Standardizer standardizer;
  standardizer.Fit(d, {1});  // train = sample 1 (feature B never observed)
  EXPECT_FLOAT_EQ(standardizer.mean(1), 0.0f);
  EXPECT_FLOAT_EQ(standardizer.stddev(1), 1.0f);
}

TEST(PrepareTest, ImputationGlobalMeanThenLocf) {
  EmrDataset d = TinyDataset();
  Standardizer standardizer;
  standardizer.Fit(d, {0});
  auto prepared = PrepareDataset(d, standardizer);
  ASSERT_EQ(prepared.size(), 2u);
  const PreparedSample& p = prepared[0];
  // Feature A (index 0): observed at t=0 (-1) and t=2 (+1).
  EXPECT_FLOAT_EQ((p.x.at({0, 0})), -1.0f);
  EXPECT_FLOAT_EQ((p.x.at({1, 0})), -1.0f);  // LOCF from t=0
  EXPECT_FLOAT_EQ((p.x.at({2, 0})), 1.0f);
  EXPECT_FLOAT_EQ((p.x.at({3, 0})), 1.0f);  // LOCF from t=2
  // Feature B: unobserved until t=1 -> global mean (0) before, LOCF after.
  EXPECT_FLOAT_EQ((p.x.at({0, 1})), 0.0f);
  const float b_std = (5.0f - standardizer.mean(1)) / standardizer.stddev(1);
  EXPECT_FLOAT_EQ((p.x.at({1, 1})), b_std);
  EXPECT_FLOAT_EQ((p.x.at({2, 1})), b_std);
}

TEST(PrepareTest, MaskAndDeltaGrids) {
  EmrDataset d = TinyDataset();
  Standardizer standardizer;
  standardizer.Fit(d, {0});
  auto prepared = PrepareDataset(d, standardizer);
  const PreparedSample& p = prepared[0];
  EXPECT_FLOAT_EQ((p.mask.at({0, 0})), 1.0f);
  EXPECT_FLOAT_EQ((p.mask.at({1, 0})), 0.0f);
  // Delta for feature A: 0 (obs), 1, 0 (obs), 1.
  EXPECT_FLOAT_EQ((p.delta.at({0, 0})), 0.0f);
  EXPECT_FLOAT_EQ((p.delta.at({1, 0})), 1.0f);
  EXPECT_FLOAT_EQ((p.delta.at({2, 0})), 0.0f);
  EXPECT_FLOAT_EQ((p.delta.at({3, 0})), 1.0f);
  // Feature B in sample 1 is never observed: delta keeps growing.
  const PreparedSample& q = prepared[1];
  EXPECT_FLOAT_EQ((q.delta.at({3, 1})), 3.0f);
}

TEST(PrepareTest, LabelsAndProvenanceCarriedThrough) {
  EmrDataset d = TinyDataset();
  Standardizer standardizer;
  standardizer.Fit(d, {0});
  auto prepared = PrepareDataset(d, standardizer);
  EXPECT_FLOAT_EQ(prepared[0].mortality_label, 1.0f);
  EXPECT_FLOAT_EQ(prepared[1].los_gt7_label, 1.0f);
  EXPECT_EQ(prepared[0].source_index, 0);
  EXPECT_EQ(prepared[1].source_index, 1);
}

TEST(BatchTest, MakeBatchShapesAndTaskSelection) {
  EmrDataset d = TinyDataset();
  Standardizer standardizer;
  standardizer.Fit(d, {0});
  auto prepared = PrepareDataset(d, standardizer);
  Batch batch = MakeBatch(prepared, {0, 1}, Task::kMortality);
  EXPECT_EQ(batch.x.shape(), (std::vector<int64_t>{2, 4, 2}));
  EXPECT_EQ(batch.mask.shape(), (std::vector<int64_t>{2, 4, 2}));
  EXPECT_EQ(batch.y.shape(), (std::vector<int64_t>{2}));
  EXPECT_FLOAT_EQ(batch.y[0], 1.0f);
  EXPECT_FLOAT_EQ(batch.y[1], 0.0f);
  Batch los = MakeBatch(prepared, {0, 1}, Task::kLosGt7);
  EXPECT_FLOAT_EQ(los.y[0], 0.0f);
  EXPECT_FLOAT_EQ(los.y[1], 1.0f);
}

TEST(BatchTest, BatchRowsMatchPreparedSamples) {
  EmrDataset d = TinyDataset();
  Standardizer standardizer;
  standardizer.Fit(d, {0});
  auto prepared = PrepareDataset(d, standardizer);
  Batch batch = MakeBatch(prepared, {1, 0}, Task::kMortality);
  // Row 0 of the batch is prepared sample 1.
  Tensor row0 = Slice(batch.x, 0, 0, 1).Reshape({4, 2});
  EXPECT_TRUE(AllClose(row0, prepared[1].x));
}

TEST(BatcherTest, CoversEveryIndexOncePerEpoch) {
  EmrDataset d = TinyDataset();
  Standardizer standardizer;
  standardizer.Fit(d, {0});
  auto prepared = PrepareDataset(d, standardizer);
  // Duplicate indices to get a bigger epoch.
  std::vector<int64_t> indices = {0, 1, 0, 1, 0};
  Rng rng(3);
  Batcher batcher(&prepared, indices, /*batch_size=*/2, Task::kMortality,
                  &rng);
  EXPECT_EQ(batcher.NumBatchesPerEpoch(), 3);
  batcher.StartEpoch();
  Batch batch;
  int64_t total = 0;
  int64_t batches = 0;
  while (batcher.Next(&batch)) {
    total += batch.y.size();
    ++batches;
  }
  EXPECT_EQ(total, 5);
  EXPECT_EQ(batches, 3);
  // Next epoch restarts.
  batcher.StartEpoch();
  EXPECT_TRUE(batcher.Next(&batch));
}

}  // namespace
}  // namespace data
}  // namespace elda
