// Edge-case and failure-injection tests across the substrate: invariant
// violations must CHECK-fail loudly (Google-style error handling), and
// boundary shapes must behave.

#include <cmath>

#include "autograd/ops.h"
#include "gtest/gtest.h"
#include "nn/gru.h"
#include "nn/linear.h"
#include "tensor/tensor_ops.h"

namespace elda {
namespace {

// ---- Tensor boundaries ---------------------------------------------------------

TEST(EdgeTest, SingleElementTensorsFlowThroughOps) {
  Tensor a = Tensor::FromData({1, 1}, {3.0f});
  Tensor b = Tensor::FromData({1, 1}, {4.0f});
  EXPECT_FLOAT_EQ(MatMul(a, b)[0], 12.0f);
  EXPECT_FLOAT_EQ(Softmax(a, 1)[0], 1.0f);
  EXPECT_FLOAT_EQ(Sum(a, 0)[0], 3.0f);
}

TEST(EdgeTest, LengthOneAxisReductions) {
  Tensor a = Tensor::FromData({3, 1}, {1, 2, 3});
  Tensor s = Sum(a, 1);
  EXPECT_EQ(s.shape(), (std::vector<int64_t>{3}));
  Tensor m = Max(a, 1, true);
  EXPECT_EQ(m.shape(), (std::vector<int64_t>{3, 1}));
  Tensor soft = Softmax(a, 1);  // softmax over a single entry is 1
  for (int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(soft[i], 1.0f);
}

TEST(EdgeTest, SliceOfFullAxisIsIdentity) {
  Rng rng(1);
  Tensor a = Tensor::Normal({2, 5}, 0, 1, &rng);
  EXPECT_TRUE(AllClose(Slice(a, 1, 0, 5), a));
}

TEST(EdgeTest, SliceOfZeroLength) {
  Tensor a({2, 5});
  Tensor s = Slice(a, 1, 2, 0);
  EXPECT_EQ(s.shape(), (std::vector<int64_t>{2, 0}));
  EXPECT_EQ(s.size(), 0);
}

TEST(EdgeDeathTest, SliceOutOfRangeAborts) {
  Tensor a({2, 5});
  EXPECT_DEATH(Slice(a, 1, 3, 4), "slice");
  EXPECT_DEATH(Slice(a, 1, -1, 2), "slice");
}

TEST(EdgeDeathTest, ConcatMismatchedShapesAborts) {
  Tensor a({2, 3});
  Tensor b({2, 4});
  EXPECT_DEATH(Concat({a, b}, 0), "CHECK failed");
}

TEST(EdgeDeathTest, AxisOutOfRangeAborts) {
  Tensor a({2, 3});
  EXPECT_DEATH(Sum(a, 2), "axis");
  EXPECT_DEATH(Softmax(a, -3), "axis");
}

TEST(EdgeDeathTest, MaxAllOfEmptyAborts) {
  Tensor empty = Tensor::FromData({0}, {});
  EXPECT_DEATH(MaxAll(empty), "CHECK failed");
}

// ---- Numerical robustness ---------------------------------------------------------

TEST(EdgeTest, SoftmaxWithAllMaskedButOneEntry) {
  Tensor logits = Tensor::FromData({1, 4}, {-1e9f, -1e9f, 5.0f, -1e9f});
  Tensor s = Softmax(logits, 1);
  EXPECT_NEAR(s[2], 1.0f, 1e-6f);
  EXPECT_NEAR(s[0] + s[1] + s[3], 0.0f, 1e-6f);
}

TEST(EdgeTest, ExpOfLargeNegativeIsZeroNotNan) {
  Tensor a = Tensor::FromData({2}, {-200.0f, -1000.0f});
  Tensor e = Exp(a);
  EXPECT_FLOAT_EQ(e[0], 0.0f);
  EXPECT_FALSE(std::isnan(e[1]));
}

TEST(EdgeTest, GradientsThroughDeepChainStayFinite) {
  // 60 chained tanh ops: gradient underflows toward 0 but never NaNs.
  ag::Variable x(Tensor::FromData({4}, {0.3f, -0.2f, 0.5f, 0.9f}), true);
  ag::Variable h = x;
  for (int i = 0; i < 60; ++i) h = ag::Tanh(h);
  ag::SumAll(h).Backward();
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(std::isfinite(x.grad()[i]));
  }
}

TEST(EdgeTest, LongSequenceGruStaysFinite) {
  Rng rng(2);
  nn::Gru gru(3, 4, &rng);
  ag::Variable x =
      ag::Constant(Tensor::Normal({1, 200, 3}, 0.0f, 2.0f, &rng));
  Tensor h = gru.Forward(x).value();
  for (int64_t i = 0; i < h.size(); ++i) EXPECT_TRUE(std::isfinite(h[i]));
}

TEST(EdgeTest, BatchSizeOneEverywhere) {
  Rng rng(3);
  nn::Gru gru(5, 6, &rng);
  nn::Linear head(6, 1, true, &rng);
  ag::Variable x = ag::Constant(Tensor::Normal({1, 8, 5}, 0, 1, &rng));
  auto steps = gru.ForwardSteps(x);
  Tensor logit = head.Forward(steps.back()).value();
  EXPECT_EQ(logit.shape(), (std::vector<int64_t>{1, 1}));
}

TEST(EdgeDeathTest, DropoutRateOneAborts) {
  Rng rng(4);
  ag::Variable a(Tensor::Ones({4}), true);
  EXPECT_DEATH(ag::Dropout(a, 1.0f, true, &rng), "CHECK failed");
}

TEST(EdgeDeathTest, BceSizeMismatchAborts) {
  ag::Variable z(Tensor::Ones({3}), true);
  Tensor y = Tensor::Ones({4});
  EXPECT_DEATH(ag::BceWithLogits(z, y), "CHECK failed");
}

}  // namespace
}  // namespace elda
