// Bitwise-identity tests for the GEMM kernels.
//
// MatMul's contract (tensor_ops.h) is that every kernel — the simple
// small-product loops and the packed cache-blocked microkernel — produces
// output bit-for-bit equal to GemmReference for every shape, transpose
// combination, and thread count. These tests enforce that with memcmp, not
// tolerances: any reassociation, accumulator splitting, or zero-skipping
// shortcut in a kernel shows up as a hard failure here.

#include <cstring>
#include <vector>

#include "gtest/gtest.h"
#include "par/par.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace elda {
namespace {

// Mixed-sign values with ~25% exact zeros. Zeros exercise any
// skip-zero shortcut a kernel might take (the accumulator must still pass
// through fma(0, b, acc)); sign mixing exercises cancellation, where a
// reordered sum diverges fastest.
Tensor PatternTensor(std::vector<int64_t> shape, uint64_t seed) {
  Rng rng(seed);
  Tensor t = Tensor::Empty(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) {
    t[i] = rng.Uniform(0.0, 1.0) < 0.25
               ? 0.0f
               : static_cast<float>(rng.Normal(0.0, 1.0));
  }
  return t;
}

void ExpectBitwiseMatch(int64_t m, int64_t k, int64_t n, bool ta, bool tb,
                        uint64_t seed) {
  Tensor a = PatternTensor(
      ta ? std::vector<int64_t>{k, m} : std::vector<int64_t>{m, k}, seed);
  Tensor b = PatternTensor(
      tb ? std::vector<int64_t>{n, k} : std::vector<int64_t>{k, n}, seed + 1);
  std::vector<float> ref(static_cast<size_t>(m * n));
  GemmReference(a.data(), b.data(), ref.data(), m, k, n, ta, tb);
  for (int64_t threads : {1, 2, 8}) {
    par::ScopedNumThreads scoped(threads);
    Tensor c = MatMul(a, b, ta, tb);
    ASSERT_EQ(c.shape(0), m);
    ASSERT_EQ(c.shape(1), n);
    ASSERT_EQ(std::memcmp(c.data(), ref.data(), ref.size() * sizeof(float)), 0)
        << "m=" << m << " k=" << k << " n=" << n << " trans_a=" << ta
        << " trans_b=" << tb << " threads=" << threads;
  }
}

TEST(GemmBitwiseTest, SweepSmallOddPrimeShapesAllTransposes) {
  // Crosses simple-vs-packed thresholds, microtile edges (odd/prime dims),
  // and degenerate rows/columns, for all four transpose combinations.
  const int64_t dims[] = {1, 2, 3, 5, 8, 17, 37, 64};
  uint64_t seed = 1;
  for (int64_t m : dims) {
    for (int64_t k : dims) {
      for (int64_t n : dims) {
        for (int ta = 0; ta < 2; ++ta) {
          for (int tb = 0; tb < 2; ++tb) {
            ExpectBitwiseMatch(m, k, n, ta != 0, tb != 0, seed++);
            if (::testing::Test::HasFatalFailure()) return;
          }
        }
      }
    }
  }
}

TEST(GemmBitwiseTest, PackedKernelShapes) {
  // Shapes that definitely take the packed cache-blocked path, including
  // dims that are not multiples of the register tile.
  ExpectBitwiseMatch(256, 256, 256, false, false, 1001);
  ExpectBitwiseMatch(256, 256, 256, false, true, 1002);
  ExpectBitwiseMatch(65, 127, 63, true, false, 1003);
  ExpectBitwiseMatch(65, 127, 63, true, true, 1004);
  ExpectBitwiseMatch(64, 101, 192, false, false, 1005);  // GRU gate shape
  ExpectBitwiseMatch(37, 24, 37, false, true, 1006);  // feature interaction
}

TEST(GemmBitwiseTest, BatchedMatchesPerItemReference) {
  const int64_t B = 6, m = 37, k = 24, n = 37;
  uint64_t seed = 2001;
  for (int ta = 0; ta < 2; ++ta) {
    for (int tb = 0; tb < 2; ++tb) {
      Tensor a = PatternTensor(ta ? std::vector<int64_t>{B, k, m}
                                  : std::vector<int64_t>{B, m, k},
                               seed++);
      Tensor b = PatternTensor(tb ? std::vector<int64_t>{B, n, k}
                                  : std::vector<int64_t>{B, k, n},
                               seed++);
      std::vector<float> ref(static_cast<size_t>(B * m * n));
      for (int64_t i = 0; i < B; ++i) {
        GemmReference(a.data() + i * m * k, b.data() + i * k * n,
                      ref.data() + i * m * n, m, k, n, ta != 0, tb != 0);
      }
      for (int64_t threads : {1, 2, 8}) {
        par::ScopedNumThreads scoped(threads);
        Tensor c = MatMul(a, b, ta != 0, tb != 0);
        ASSERT_EQ(
            std::memcmp(c.data(), ref.data(), ref.size() * sizeof(float)), 0)
            << "trans_a=" << ta << " trans_b=" << tb
            << " threads=" << threads;
      }
    }
  }
}

TEST(GemmBitwiseTest, SharedRhsBatchMatchesReference) {
  // 3-D x 2-D: the right-hand side is shared across the batch; the packed
  // kernel packs it once per chunk and must still match item-by-item.
  const int64_t B = 64, m = 8, k = 101, n = 192;
  Tensor a = PatternTensor({B, m, k}, 3001);
  Tensor b = PatternTensor({k, n}, 3002);
  std::vector<float> ref(static_cast<size_t>(B * m * n));
  for (int64_t i = 0; i < B; ++i) {
    GemmReference(a.data() + i * m * k, b.data(), ref.data() + i * m * n, m,
                  k, n, false, false);
  }
  for (int64_t threads : {1, 2, 8}) {
    par::ScopedNumThreads scoped(threads);
    Tensor c = MatMul(a, b);
    ASSERT_EQ(std::memcmp(c.data(), ref.data(), ref.size() * sizeof(float)),
              0)
        << "threads=" << threads;
  }
}

TEST(GemmBitwiseTest, ZeroSizedDims) {
  // k == 0 contracts over nothing: the output must be exact zeros.
  Tensor a = Tensor::Empty({4, 0});
  Tensor b = Tensor::Empty({0, 5});
  Tensor c = MatMul(a, b);
  ASSERT_EQ(c.size(), 20);
  for (int64_t i = 0; i < c.size(); ++i) EXPECT_EQ(c[i], 0.0f);
  // m == 0 / n == 0 produce empty outputs without touching memory.
  EXPECT_EQ(MatMul(Tensor::Empty({0, 3}), Tensor::Empty({3, 5})).size(), 0);
  EXPECT_EQ(MatMul(Tensor::Empty({4, 3}), Tensor::Empty({3, 0})).size(), 0);
}

}  // namespace
}  // namespace elda
