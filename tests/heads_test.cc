// Task-head contracts over the encoder/readout decomposition:
//
//  * BinaryTerminalHead recomposes the legacy monolithic Forward bitwise for
//    every registry model, at every thread count.
//  * The terminal column of EncodeSteps equals EncodeTerminal bitwise.
//  * Streamed decompensation (StepForward via serve::StreamDecompensation)
//    equals the batch DecompensationHead per step, bitwise, for every model
//    with a step encoding.
//  * Single-task training through the multi-task loop reproduces the legacy
//    Trainer::Train parameters bitwise, across thread counts.
//  * Multi-task kill-and-resume converges to bitwise-identical parameters.
//  * Every head's loss passes a numerical gradient check.

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "baselines/baselines.h"
#include "baselines/gru_classifier.h"
#include "gtest/gtest.h"
#include "par/par.h"
#include "serve/service.h"
#include "synth/simulator.h"
#include "tensor/tensor_ops.h"
#include "train/experiment.h"
#include "train/task_head.h"
#include "train/trainer.h"

namespace elda {
namespace {

std::vector<std::string> AllRegistryNames() {
  std::vector<std::string> names = baselines::AllModelNames();
  names.push_back("ELDA-Net-Fbi*");
  names.push_back("ELDA-Net-Ffm*");
  return names;
}

// Bitwise float equality with NaN == NaN (warm-up steps are quiet NaN).
bool BitEqual(float a, float b) {
  if (std::isnan(a) && std::isnan(b)) return true;
  uint32_t ua, ub;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

bool BitEqualTensors(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  for (int64_t i = 0; i < a.size(); ++i) {
    if (!BitEqual(a.data()[i], b.data()[i])) return false;
  }
  return true;
}

// A batch carrying every label slab (uniform lengths).
data::Batch MultiTaskBatch(int64_t batch, int64_t steps, int64_t features,
                           uint64_t seed) {
  Rng rng(seed);
  data::Batch b;
  b.x = Tensor::Normal({batch, steps, features}, 0.0f, 1.0f, &rng);
  b.mask = Tensor({batch, steps, features});
  for (int64_t i = 0; i < b.mask.size(); ++i) {
    b.mask[i] = rng.Bernoulli(0.6) ? 1.0f : 0.0f;
  }
  b.delta = Tensor({batch, steps, features});
  for (int64_t i = 0; i < b.delta.size(); ++i) {
    b.delta[i] = static_cast<float>(rng.Uniform() * 3.0);
  }
  b.y = Tensor({batch});
  b.y_los = Tensor({batch});
  b.y_decomp = Tensor({batch, steps});
  b.y_pheno = Tensor({batch, data::kNumPhenotypes});
  for (int64_t i = 0; i < batch; ++i) {
    b.y[i] = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
    b.y_los[i] = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
  }
  for (int64_t i = 0; i < b.y_decomp.size(); ++i) {
    b.y_decomp[i] = rng.Bernoulli(0.3) ? 1.0f : 0.0f;
  }
  for (int64_t i = 0; i < b.y_pheno.size(); ++i) {
    b.y_pheno[i] = rng.Bernoulli(0.4) ? 1.0f : 0.0f;
  }
  b.lengths.assign(batch, steps);
  return b;
}

// -- BinaryTerminalHead == legacy Forward, whole registry, all threads ------

TEST(HeadsTest, BinaryTerminalHeadMatchesForwardForEveryRegistryModel) {
  const int64_t features = 5;
  const data::Batch batch = MultiTaskBatch(4, 6, features, 77);
  const train::BinaryTerminalHead head;
  for (const std::string& name : AllRegistryNames()) {
    SCOPED_TRACE(name);
    auto model = baselines::MakeModel(name, features, /*seed=*/3);
    Tensor reference;
    for (int64_t threads : {1, 2, 8}) {
      SCOPED_TRACE(threads);
      par::ScopedNumThreads scoped(threads);
      nn::ForwardContext ctx;
      train::Encoding enc = model->Encode(batch, &ctx);
      EXPECT_EQ(enc.terminal.value().shape(1), model->encoding_dim());
      const Tensor head_logits = head.Logits(*model, enc, &ctx).value();
      const Tensor forward = model->Forward(batch).value();
      EXPECT_TRUE(BitEqualTensors(head_logits, forward));
      if (!reference.defined()) {
        reference = head_logits.Clone();
      } else {
        EXPECT_TRUE(BitEqualTensors(head_logits, reference))
            << "thread count changed the terminal head logits";
      }
    }
  }
}

TEST(HeadsTest, TerminalColumnOfEncodeStepsMatchesEncodeTerminal) {
  const int64_t features = 5;
  const int64_t steps = 4;
  const data::Batch batch = MultiTaskBatch(2, steps, features, 13);
  for (const std::string& name : AllRegistryNames()) {
    SCOPED_TRACE(name);
    auto model = baselines::MakeModel(name, features, /*seed=*/9);
    if (!model->has_step_encoding()) continue;
    nn::ForwardContext ctx;
    train::Encoding enc = model->Encode(batch, &ctx, /*want_steps=*/true);
    ASSERT_TRUE(enc.steps.defined());
    const Tensor& per_step = enc.steps.value();
    ASSERT_EQ(per_step.shape(),
              (std::vector<int64_t>{2, steps, model->encoding_dim()}));
    const Tensor& terminal = enc.terminal.value();
    const int64_t dim = model->encoding_dim();
    for (int64_t b = 0; b < 2; ++b) {
      for (int64_t h = 0; h < dim; ++h) {
        EXPECT_TRUE(BitEqual(per_step.at({b, steps - 1, h}),
                             terminal.at({b, h})))
            << "row " << b << " dim " << h;
      }
    }
  }
}

TEST(HeadsTest, StaticModelsExposeTerminalOnlyEncoding) {
  for (const char* name : {"LR", "FM", "AFM"}) {
    SCOPED_TRACE(name);
    auto model = baselines::MakeModel(name, 5, /*seed=*/3);
    EXPECT_FALSE(model->has_step_encoding());
  }
}

// -- Streamed decompensation == batch head, per step, bitwise ---------------

TEST(HeadsTest, StreamedDecompensationMatchesBatchHeadForEveryModel) {
  const int64_t features = 5;
  const int64_t steps = 6;
  Rng rng(21);
  // One prepared sample; its rows stream through the serving path.
  data::PreparedSample sample;
  sample.x = Tensor::Normal({steps, features}, 0.0f, 1.0f, &rng);
  sample.mask = Tensor({steps, features});
  for (int64_t i = 0; i < sample.mask.size(); ++i) {
    sample.mask[i] = rng.Bernoulli(0.6) ? 1.0f : 0.0f;
  }
  sample.delta = Tensor({steps, features});
  for (int64_t i = 0; i < sample.delta.size(); ++i) {
    sample.delta[i] = static_cast<float>(rng.Uniform() * 3.0);
  }
  sample.length = steps;
  const std::vector<data::PreparedSample> prepared = {sample};
  const data::Batch batch =
      data::MakeBatch(prepared, {0}, data::Task::kMortality);

  const train::DecompensationHead head;
  for (const std::string& name : AllRegistryNames()) {
    SCOPED_TRACE(name);
    auto model = baselines::MakeModel(name, features, /*seed=*/11);
    if (!model->has_step_encoding()) continue;

    // Batch path: readout over every row of the per-step encoding.
    nn::ForwardContext ctx;
    train::Encoding enc = model->Encode(batch, &ctx, /*want_steps=*/true);
    const Tensor batch_probs =
        Sigmoid(head.Logits(*model, enc, &ctx).value());

    // Streaming path: the same rows through StepForward.
    serve::ServeConfig config;
    config.async = false;
    config.window_capacity = steps + 1;
    serve::InferenceService service(model.get(), config);
    const serve::SessionId id = service.Admit("p0");
    ASSERT_NE(id, serve::kInvalidSession);
    const std::vector<float> streamed =
        serve::StreamDecompensation(&service, id, sample);
    ASSERT_EQ(static_cast<int64_t>(streamed.size()), steps);
    for (int64_t t = 0; t < steps; ++t) {
      EXPECT_TRUE(BitEqual(streamed[t], batch_probs.at({0, t})))
          << "step " << t << ": streamed " << streamed[t] << " vs batch "
          << batch_probs.at({0, t});
    }
    // Warm-up steps are NaN on both paths.
    for (int64_t t = 0; t + 1 < model->min_steps_to_score(); ++t) {
      EXPECT_TRUE(std::isnan(streamed[t]));
    }
  }
}

// -- Training equivalence and checkpoint/resume -----------------------------

synth::CohortConfig TinyCohort(int64_t admissions) {
  synth::CohortConfig config = synth::SynthPhysioNet2012();
  config.num_admissions = admissions;
  return config;
}

std::unique_ptr<train::MultiHead> FullHeads(
    const train::SequenceModel& model) {
  auto heads = std::make_unique<train::MultiHead>();
  heads->Add(std::make_unique<train::BinaryTerminalHead>(), 1.0f);
  heads->Add(std::make_unique<train::DecompensationHead>(), 0.5f);
  heads->Add(std::make_unique<train::PhenotypeHead>(
                 model.encoding_dim(), data::kNumPhenotypes, /*seed=*/91),
             0.5f);
  heads->Add(std::make_unique<train::LosHead>(model.encoding_dim(),
                                              /*seed=*/92),
             0.5f);
  return heads;
}

TEST(HeadsTest, SingleBinaryHeadTrainingMatchesLegacyTrainBitwise) {
  data::EmrDataset cohort = synth::GenerateCohort(TinyCohort(60));
  train::PreparedExperiment experiment(cohort, data::Task::kMortality);
  train::TrainerConfig config;
  config.max_epochs = 2;
  config.batch_size = 16;
  config.seed = 3;

  baselines::GruClassifier legacy(experiment.num_features(), 8, /*seed=*/5);
  train::Trainer trainer(config);
  const train::TrainResult legacy_result = trainer.Train(
      &legacy, experiment.prepared(), experiment.split(),
      data::Task::kMortality);
  ASSERT_EQ(legacy_result.status, health::TrainStatus::kOk);

  for (int64_t threads : {1, 2}) {
    SCOPED_TRACE(threads);
    baselines::GruClassifier model(experiment.num_features(), 8, /*seed=*/5);
    train::MultiHead heads;
    heads.Add(std::make_unique<train::BinaryTerminalHead>(), 1.0f);
    train::TrainerConfig threaded = config;
    threaded.num_threads = threads;
    train::Trainer multi_trainer(threaded);
    const train::MultiTaskTrainResult result = multi_trainer.TrainMultiTask(
        &model, &heads, experiment.prepared(), experiment.split(),
        data::Task::kMortality);
    ASSERT_EQ(result.status, health::TrainStatus::kOk);
    EXPECT_EQ(result.best_epoch, legacy_result.best_epoch);
    const auto& legacy_params = legacy.Parameters();
    const auto& multi_params = model.Parameters();
    ASSERT_EQ(legacy_params.size(), multi_params.size());
    for (size_t i = 0; i < legacy_params.size(); ++i) {
      EXPECT_TRUE(BitEqualTensors(legacy_params[i].value(),
                                  multi_params[i].value()))
          << "parameter " << i << " diverged from the legacy loop";
    }
    // The single-head mean AUC-PR is the head's own AUC-PR, and the masked
    // metric over all-valid finite scores is the dense metric bitwise.
    EXPECT_DOUBLE_EQ(result.val.mean_auc_pr, legacy_result.val.auc_pr);
  }
}

TEST(HeadsTest, MultiTaskKillAndResumeIsBitwise) {
  data::EmrDataset cohort = synth::GenerateCohort(TinyCohort(48));
  train::PreparedExperiment experiment(cohort, data::Task::kMortality);
  const int64_t features = experiment.num_features();
  // Every train batch must carry the multi-task slabs (synth cohorts
  // attach trajectory-derived labels to every sample).
  {
    data::Batch probe = data::MakeBatch(experiment.prepared(),
                                        experiment.split().train,
                                        data::Task::kMortality);
    ASSERT_TRUE(probe.has_multitask_labels());
  }

  train::TrainerConfig config;
  config.max_epochs = 3;
  config.batch_size = 16;
  config.seed = 7;

  // Uninterrupted run.
  baselines::GruClassifier model_a(features, 8, /*seed=*/5);
  auto heads_a = FullHeads(model_a);
  const train::MultiTaskTrainResult uninterrupted =
      train::Trainer(config).TrainMultiTask(&model_a, heads_a.get(),
                                            experiment.prepared(),
                                            experiment.split(),
                                            data::Task::kMortality);
  ASSERT_EQ(uninterrupted.status, health::TrainStatus::kOk);

  // Killed after epoch 1 (checkpoint written), resumed in a fresh process
  // image: new model, new heads, parameters restored from the checkpoint.
  const std::string path = testing::TempDir() + "/multitask_resume.ckpt";
  std::remove(path.c_str());
  {
    train::TrainerConfig first = config;
    first.max_epochs = 1;
    first.checkpoint_path = path;
    first.checkpoint_every = 1;
    baselines::GruClassifier model(features, 8, /*seed=*/5);
    auto heads = FullHeads(model);
    const train::MultiTaskTrainResult partial =
        train::Trainer(first).TrainMultiTask(&model, heads.get(),
                                             experiment.prepared(),
                                             experiment.split(),
                                             data::Task::kMortality);
    ASSERT_EQ(partial.status, health::TrainStatus::kOk);
  }
  baselines::GruClassifier model_b(features, 8, /*seed=*/999);  // overwritten
  auto heads_b = FullHeads(model_b);
  train::TrainerConfig resumed = config;
  resumed.checkpoint_path = path;
  resumed.checkpoint_every = 1;
  resumed.resume = true;
  const train::MultiTaskTrainResult resumed_result =
      train::Trainer(resumed).TrainMultiTask(&model_b, heads_b.get(),
                                             experiment.prepared(),
                                             experiment.split(),
                                             data::Task::kMortality);
  ASSERT_EQ(resumed_result.status, health::TrainStatus::kOk);

  train::ModelWithHead bundle_a(&model_a, heads_a.get());
  train::ModelWithHead bundle_b(&model_b, heads_b.get());
  const auto& params_a = bundle_a.Parameters();
  const auto& params_b = bundle_b.Parameters();
  ASSERT_EQ(params_a.size(), params_b.size());
  for (size_t i = 0; i < params_a.size(); ++i) {
    EXPECT_TRUE(BitEqualTensors(params_a[i].value(), params_b[i].value()))
        << "parameter " << i << " diverged after resume";
  }
  EXPECT_EQ(resumed_result.best_epoch, uninterrupted.best_epoch);
  for (size_t t = 0; t < uninterrupted.test.tasks.size(); ++t) {
    EXPECT_DOUBLE_EQ(resumed_result.test.per_task[t].auc_pr,
                     uninterrupted.test.per_task[t].auc_pr)
        << uninterrupted.test.tasks[t];
  }
  std::remove(path.c_str());
}

// -- Gradient checks --------------------------------------------------------

TEST(HeadsTest, EveryHeadLossPassesGradcheck) {
  const int64_t features = 4;
  const data::Batch batch = MultiTaskBatch(2, 4, features, 31);
  baselines::GruClassifier model(features, 5, /*seed=*/17);
  auto heads = FullHeads(model);
  train::ModelWithHead bundle(&model, heads.get());
  for (int64_t h = 0; h < heads->size(); ++h) {
    const train::TaskHead& head = heads->head(h);
    SCOPED_TRACE(head.task_name());
    auto f = [&]() {
      nn::ForwardContext ctx;
      train::Encoding enc =
          model.Encode(batch, &ctx, head.wants_steps());
      return head.Loss(model, head.Logits(model, enc, &ctx), batch);
    };
    std::string error;
    EXPECT_TRUE(ag::CheckGradients(f, bundle.Parameters(), {}, &error))
        << error;
  }
}

TEST(HeadsTest, JointLossPassesGradcheck) {
  const int64_t features = 4;
  const data::Batch batch = MultiTaskBatch(2, 4, features, 53);
  baselines::GruClassifier model(features, 5, /*seed=*/23);
  auto heads = FullHeads(model);
  train::ModelWithHead bundle(&model, heads.get());
  auto f = [&]() {
    nn::ForwardContext ctx;
    train::Encoding enc =
        model.Encode(batch, &ctx, heads->wants_steps());
    return heads->JointLoss(model, enc, batch, &ctx);
  };
  std::string error;
  EXPECT_TRUE(ag::CheckGradients(f, bundle.Parameters(), {}, &error))
      << error;
}

TEST(HeadsDeathTest, DecompensationRequiresStepEncoding) {
  auto model = baselines::MakeModel("LR", 5, /*seed=*/3);
  const data::Batch batch = MultiTaskBatch(2, 4, 5, 3);
  const train::DecompensationHead head;
  nn::ForwardContext ctx;
  train::Encoding enc = model->Encode(batch, &ctx);
  EXPECT_DEATH(head.Logits(*model, enc, &ctx), "per-step encoding");
}

}  // namespace
}  // namespace elda
