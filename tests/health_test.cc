#include <cmath>
#include <fstream>
#include <limits>
#include <string>

#include "gtest/gtest.h"
#include "health/ckpt_io.h"
#include "health/crc32.h"
#include "health/health.h"

namespace elda {
namespace health {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Restores a pristine global injector around each test.
class DisarmedInjector : public ::testing::Test {
 protected:
  void SetUp() override { GlobalFaultInjector()->Disarm(); }
  void TearDown() override { GlobalFaultInjector()->Disarm(); }
};

TEST(Crc32Test, KnownVectors) {
  EXPECT_EQ(Crc32(std::string("")), 0u);
  // The standard CRC32 check value.
  EXPECT_EQ(Crc32(std::string("123456789")), 0xCBF43926u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string whole = "fault tolerant healthcare analytics";
  const uint32_t one_shot = Crc32(whole);
  const uint32_t chained =
      Crc32(whole.substr(10), Crc32(whole.substr(0, 10)));
  EXPECT_EQ(chained, one_shot);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string bytes(64, 'x');
  const uint32_t before = Crc32(bytes);
  bytes[13] ^= 0x01;
  EXPECT_NE(Crc32(bytes), before);
}

TEST(HealthMonitorTest, FiniteStepsAreHealthy) {
  HealthMonitor monitor(HealthConfig{});
  EXPECT_EQ(monitor.Check(0.7, 2.5), StepVerdict::kHealthy);
}

TEST(HealthMonitorTest, FlagsNonFiniteLossAndGradNorm) {
  HealthMonitor monitor(HealthConfig{});
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(monitor.Check(nan, 1.0), StepVerdict::kNonFinite);
  EXPECT_EQ(monitor.Check(0.5, nan), StepVerdict::kNonFinite);
  EXPECT_EQ(monitor.Check(inf, 1.0), StepVerdict::kNonFinite);
  EXPECT_EQ(monitor.Check(0.5, inf), StepVerdict::kNonFinite);
}

TEST(HealthMonitorTest, FlagsLossExplosionAgainstTrailingMean) {
  HealthConfig config;
  config.loss_explosion_factor = 10.0;
  HealthMonitor monitor(config);
  for (int i = 0; i < 20; ++i) monitor.Observe(1.0);
  EXPECT_EQ(monitor.Check(5.0, 1.0), StepVerdict::kHealthy);
  EXPECT_EQ(monitor.Check(100.0, 1.0), StepVerdict::kLossExplosion);
  // Reset clears the window, so the detector needs fresh observations.
  monitor.Reset();
  EXPECT_EQ(monitor.Check(100.0, 1.0), StepVerdict::kHealthy);
}

TEST(HealthMonitorTest, ExplosionDetectorCanBeDisabled) {
  HealthConfig config;
  config.loss_explosion_factor = 0.0;
  HealthMonitor monitor(config);
  for (int i = 0; i < 5; ++i) monitor.Observe(1.0);
  EXPECT_EQ(monitor.Check(1e12, 1.0), StepVerdict::kHealthy);
}

TEST(FaultPlanTest, ParsesFullSpec) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse(
      "poison_grad@12,fail_write@0;truncate_write@2,flip_byte@1:40", &plan,
      &error))
      << error;
  EXPECT_EQ(plan.poison_grad_at_step, 12);
  EXPECT_EQ(plan.fail_write_at, 0);
  EXPECT_EQ(plan.truncate_write_at, 2);
  EXPECT_EQ(plan.flip_byte_write_at, 1);
  EXPECT_EQ(plan.flip_byte_offset, 40);
  EXPECT_TRUE(plan.Any());
}

TEST(FaultPlanTest, EmptySpecIsNoFaults) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse("", &plan, &error));
  EXPECT_FALSE(plan.Any());
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  FaultPlan plan;
  std::string error;
  EXPECT_FALSE(FaultPlan::Parse("poison_grad", &plan, &error));
  EXPECT_FALSE(FaultPlan::Parse("poison_grad@abc", &plan, &error));
  EXPECT_FALSE(FaultPlan::Parse("unknown_fault@1", &plan, &error));
  EXPECT_FALSE(FaultPlan::Parse("poison_grad@3:4", &plan, &error));
  EXPECT_FALSE(error.empty());
}

TEST(FaultInjectorTest, PoisonFiresExactlyOnce) {
  FaultInjector injector;
  FaultPlan plan;
  plan.poison_grad_at_step = 5;
  injector.Arm(plan);
  EXPECT_FALSE(injector.ConsumePoisonGrad(4));
  EXPECT_TRUE(injector.ConsumePoisonGrad(5));
  EXPECT_FALSE(injector.ConsumePoisonGrad(5));
}

TEST(FaultInjectorTest, WriteFaultsFireOnTheirSlot) {
  FaultInjector injector;
  FaultPlan plan;
  plan.fail_write_at = 1;
  plan.flip_byte_write_at = 2;
  plan.flip_byte_offset = 17;
  injector.Arm(plan);
  int64_t offset = 0;
  EXPECT_EQ(injector.NextWriteFault(&offset), WriteFault::kNone);
  EXPECT_EQ(injector.NextWriteFault(&offset), WriteFault::kFail);
  EXPECT_EQ(injector.NextWriteFault(&offset), WriteFault::kFlipByte);
  EXPECT_EQ(offset, 17);
  EXPECT_EQ(injector.NextWriteFault(&offset), WriteFault::kNone);
  EXPECT_EQ(injector.writes_seen(), 4);
}

using SectionedFileTest = DisarmedInjector;

TEST_F(SectionedFileTest, RoundTripPreservesSections) {
  const std::string path = TempPath("sections_roundtrip.ckpt");
  std::vector<Section> sections = {{"alpha", std::string("payload-a")},
                                   {"beta", std::string(300, '\x7f')}};
  std::string error;
  ASSERT_TRUE(WriteSectionedFile(path, sections, &error)) << error;
  std::vector<Section> loaded;
  ASSERT_TRUE(ReadSectionedFile(path, &loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].name, "alpha");
  EXPECT_EQ(loaded[0].payload, "payload-a");
  EXPECT_EQ(loaded[1].name, "beta");
  EXPECT_EQ(loaded[1].payload, sections[1].payload);
  EXPECT_NE(FindSection(loaded, "beta"), nullptr);
  EXPECT_EQ(FindSection(loaded, "gamma"), nullptr);
}

TEST_F(SectionedFileTest, RejectsOnDiskBitFlipWithPreciseError) {
  const std::string path = TempPath("sections_bitflip.ckpt");
  std::string error;
  ASSERT_TRUE(WriteSectionedFile(
      path, {{"blob", std::string(100, 'q')}}, &error));
  std::string bytes = ReadFile(path);
  // Header is 12 bytes, section header 16 more: offset 30 is inside the
  // payload.
  bytes[30] ^= 0x01;
  WriteFile(path, bytes);
  std::vector<Section> loaded;
  EXPECT_FALSE(ReadSectionedFile(path, &loaded, &error));
  EXPECT_NE(error.find("checksum mismatch"), std::string::npos) << error;
  EXPECT_NE(error.find("blob"), std::string::npos) << error;
}

TEST_F(SectionedFileTest, RejectsTruncatedFile) {
  const std::string path = TempPath("sections_truncated.ckpt");
  std::string error;
  ASSERT_TRUE(WriteSectionedFile(
      path, {{"blob", std::string(100, 'q')}}, &error));
  const std::string bytes = ReadFile(path);
  WriteFile(path, bytes.substr(0, bytes.size() / 2));
  std::vector<Section> loaded;
  EXPECT_FALSE(ReadSectionedFile(path, &loaded, &error));
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
}

TEST_F(SectionedFileTest, RejectsGarbageAndWrongVersion) {
  const std::string path = TempPath("sections_garbage.ckpt");
  WriteFile(path, "certainly not a checkpoint");
  std::vector<Section> loaded;
  std::string error;
  EXPECT_FALSE(ReadSectionedFile(path, &loaded, &error));
  EXPECT_NE(error.find("not an ELDA checkpoint"), std::string::npos);

  // Correct magic, unsupported version.
  std::string bytes = "ELDA";
  const uint32_t bad_version = 77;
  bytes.append(reinterpret_cast<const char*>(&bad_version),
               sizeof(bad_version));
  WriteFile(path, bytes);
  EXPECT_FALSE(ReadSectionedFile(path, &loaded, &error));
  EXPECT_NE(error.find("version"), std::string::npos);
}

TEST_F(SectionedFileTest, InjectedFailureLeavesPreviousFileIntact) {
  const std::string path = TempPath("sections_atomic.ckpt");
  std::string error;
  ASSERT_TRUE(WriteSectionedFile(path, {{"gen", std::string("one")}},
                                 &error));
  FaultPlan plan;
  plan.fail_write_at = 0;
  GlobalFaultInjector()->Arm(plan);
  EXPECT_FALSE(WriteSectionedFile(path, {{"gen", std::string("two")}},
                                  &error));
  EXPECT_NE(error.find("injected"), std::string::npos);
  GlobalFaultInjector()->Disarm();
  // The failed write must not have damaged the previous checkpoint.
  std::vector<Section> loaded;
  ASSERT_TRUE(ReadSectionedFile(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded[0].payload, "one");
}

TEST_F(SectionedFileTest, InjectedTornWriteIsRejectedAtLoad) {
  const std::string path = TempPath("sections_torn.ckpt");
  FaultPlan plan;
  plan.truncate_write_at = 0;
  GlobalFaultInjector()->Arm(plan);
  std::string error;
  EXPECT_FALSE(WriteSectionedFile(
      path, {{"blob", std::string(100, 'z')}}, &error));
  GlobalFaultInjector()->Disarm();
  std::vector<Section> loaded;
  EXPECT_FALSE(ReadSectionedFile(path, &loaded, &error));
}

TEST_F(SectionedFileTest, InjectedByteFlipIsCaughtByCrc) {
  const std::string path = TempPath("sections_flip.ckpt");
  FaultPlan plan;
  plan.flip_byte_write_at = 0;
  plan.flip_byte_offset = 30;  // inside the payload
  GlobalFaultInjector()->Arm(plan);
  std::string error;
  // The write itself "succeeds": the corruption is silent until load.
  ASSERT_TRUE(WriteSectionedFile(
      path, {{"blob", std::string(100, 'q')}}, &error));
  GlobalFaultInjector()->Disarm();
  std::vector<Section> loaded;
  EXPECT_FALSE(ReadSectionedFile(path, &loaded, &error));
  EXPECT_NE(error.find("checksum mismatch"), std::string::npos) << error;
}

}  // namespace
}  // namespace health
}  // namespace elda
