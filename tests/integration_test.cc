// Cross-module integration tests: full cohort -> pipeline -> training ->
// evaluation -> interpretation flows, exercised end-to-end.

#include <cmath>
#include <set>

#include "baselines/baselines.h"
#include "core/elda.h"
#include "gtest/gtest.h"
#include "synth/simulator.h"
#include "tensor/tensor_ops.h"
#include "train/experiment.h"

namespace elda {
namespace {

// One shared medium cohort so the expensive generation happens once.
const data::EmrDataset& Cohort() {
  static const data::EmrDataset* kCohort = [] {
    synth::CohortConfig config = synth::SynthPhysioNet2012();
    config.num_admissions = 300;
    return new data::EmrDataset(synth::GenerateCohort(config));
  }();
  return *kCohort;
}

TEST(IntegrationTest, PreparedExperimentIsConsistent) {
  train::PreparedExperiment experiment(Cohort(), data::Task::kMortality);
  EXPECT_EQ(experiment.prepared().size(), 300u);
  EXPECT_EQ(experiment.num_features(), 37);
  // Split partitions everything exactly once.
  std::set<int64_t> all;
  for (int64_t i : experiment.split().train) all.insert(i);
  for (int64_t i : experiment.split().val) all.insert(i);
  for (int64_t i : experiment.split().test) all.insert(i);
  EXPECT_EQ(all.size(), 300u);
  // Stratification put positives in every partition.
  auto positives = [&](const std::vector<int64_t>& idx) {
    int64_t count = 0;
    for (int64_t i : idx) {
      count += experiment.prepared()[i].mortality_label == 1.0f;
    }
    return count;
  };
  EXPECT_GT(positives(experiment.split().train), 0);
  EXPECT_GT(positives(experiment.split().val), 0);
  EXPECT_GT(positives(experiment.split().test), 0);
}

TEST(IntegrationTest, TemporalModelBeatsChanceOnMortality) {
  // A dedicated, larger cohort: the 300-admission shared cohort's 30-sample
  // test split is too noisy to assert model quality on.
  synth::CohortConfig config_cohort = synth::SynthPhysioNet2012();
  config_cohort.num_admissions = 600;
  config_cohort.seed = 4242;
  data::EmrDataset cohort = synth::GenerateCohort(config_cohort);
  train::PreparedExperiment experiment(cohort, data::Task::kMortality);
  train::TrainerConfig config;
  config.max_epochs = 10;
  train::ModelStats stats =
      baselines::RunModelByName("GRU", experiment, config, 1);
  EXPECT_GT(stats.auc_roc.mean, 0.6);
  // Better than the ~14% positive-rate chance level for AUC-PR.
  EXPECT_GT(stats.auc_pr.mean, 0.18);
}

TEST(IntegrationTest, RepeatedRunsAggregateOverSeeds) {
  train::PreparedExperiment experiment(Cohort(), data::Task::kLosGt7);
  train::TrainerConfig config;
  config.max_epochs = 3;
  train::ModelStats stats =
      baselines::RunModelByName("LR", experiment, config, 3);
  EXPECT_EQ(stats.name, "LR");
  // Aggregation mechanics: all fields populated and within metric ranges.
  // (Model quality on this 300-admission toy split is covered elsewhere.)
  EXPECT_GT(stats.auc_roc.mean, 0.0);
  EXPECT_LT(stats.auc_roc.mean, 1.0);
  EXPECT_GE(stats.auc_pr.mean, 0.0);
  EXPECT_GE(stats.auc_roc.stddev, 0.0);
  EXPECT_GT(stats.bce.mean, 0.0);
  EXPECT_GT(stats.train_seconds_per_batch, 0.0);
  EXPECT_GT(stats.predict_ms_per_sample, 0.0);
  // A single-run aggregate has zero spread by definition.
  train::ModelStats single =
      baselines::RunModelByName("LR", experiment, config, 1);
  EXPECT_DOUBLE_EQ(single.auc_roc.stddev, 0.0);
}

TEST(IntegrationTest, BothTasksShareTheSamePreparedTensors) {
  train::PreparedExperiment mortality(Cohort(), data::Task::kMortality, 99);
  train::PreparedExperiment los(Cohort(), data::Task::kLosGt7, 99);
  // Same standardisation statistics (fit on different stratified splits is
  // allowed to differ slightly; verify the grid content of one sample
  // prepared under each is identical because preparation is label-free).
  const auto& a = mortality.prepared()[0];
  const auto& b = los.prepared()[0];
  EXPECT_EQ(a.x.shape(), b.x.shape());
  EXPECT_EQ(a.source_index, b.source_index);
}

TEST(IntegrationTest, EldaFrameworkAlertsAreThresholded) {
  core::EldaConfig config;
  config.net.embed_dim = 8;
  config.net.compression = 2;
  config.net.hidden_dim = 16;
  config.trainer.max_epochs = 2;
  config.alert_threshold = 0.3f;
  core::Elda elda(config);
  elda.Fit(Cohort(), data::Task::kMortality);
  synth::CohortConfig incoming_config = synth::SynthPhysioNet2012();
  incoming_config.num_admissions = 20;
  incoming_config.seed = 555;
  data::EmrDataset incoming = synth::GenerateCohort(incoming_config);
  std::vector<data::EmrSample> patients(incoming.samples().begin(),
                                        incoming.samples().end());
  std::vector<float> risks = elda.PredictRisk(patients);
  std::vector<bool> alerts = elda.TriggerAlerts(patients);
  for (size_t i = 0; i < patients.size(); ++i) {
    EXPECT_EQ(alerts[i], risks[i] >= 0.3f) << i;
  }
}

TEST(IntegrationTest, InterpretationMatchesDirectNetAttention) {
  core::EldaConfig config;
  config.net.embed_dim = 8;
  config.net.compression = 2;
  config.net.hidden_dim = 16;
  config.trainer.max_epochs = 1;
  core::Elda elda(config);
  elda.Fit(Cohort(), data::Task::kMortality);
  data::EmrSample patient = synth::MakeDlaShowcasePatient();
  core::Elda::Interpretation interp = elda.Interpret(patient);
  EXPECT_EQ(interp.feature_attention.shape(),
            (std::vector<int64_t>{48, 37, 37}));
  EXPECT_EQ(interp.time_attention.shape(), (std::vector<int64_t>{47}));
  // Interpretation runs a capture-sink Forward with no hidden model state,
  // so a second pass reproduces the surfaces exactly.
  core::Elda::Interpretation again = elda.Interpret(patient);
  EXPECT_TRUE(AllClose(interp.feature_attention, again.feature_attention));
  EXPECT_TRUE(AllClose(interp.time_attention, again.time_attention));
  // Risk from Interpret equals PredictRisk for the same sample.
  const float risk = elda.PredictRisk({patient})[0];
  EXPECT_NEAR(interp.risk, risk, 1e-5f);
}

TEST(IntegrationTest, TruncatedRecordsStillScore) {
  // The monitoring example truncates admissions to the first k hours; the
  // pipeline must handle mostly-empty grids gracefully.
  core::EldaConfig config;
  config.net.embed_dim = 8;
  config.net.compression = 2;
  config.net.hidden_dim = 16;
  config.trainer.max_epochs = 1;
  core::Elda elda(config);
  elda.Fit(Cohort(), data::Task::kMortality);
  data::EmrSample patient = Cohort().sample(0);
  for (int64_t t = 6; t < patient.num_steps; ++t) {
    for (int64_t c = 0; c < patient.num_features; ++c) {
      patient.set_observed(t, c, false);
      patient.value(t, c) = 0.0f;
    }
  }
  const float risk = elda.PredictRisk({patient})[0];
  EXPECT_TRUE(std::isfinite(risk));
  EXPECT_GE(risk, 0.0f);
  EXPECT_LE(risk, 1.0f);
}

TEST(IntegrationTest, FullyUnobservedAdmissionStillScores) {
  core::EldaConfig config;
  config.net.embed_dim = 8;
  config.net.compression = 2;
  config.net.hidden_dim = 16;
  config.trainer.max_epochs = 1;
  core::Elda elda(config);
  elda.Fit(Cohort(), data::Task::kMortality);
  data::EmrSample empty(48, 37);  // no observations at all
  const float risk = elda.PredictRisk({empty})[0];
  EXPECT_TRUE(std::isfinite(risk));
}

TEST(IntegrationTest, ExtremeObservedValuesStayFinite) {
  // Failure injection: absurdly large (but positive) lab values must not
  // produce NaNs anywhere in the pipeline or model.
  core::EldaConfig config;
  config.net.embed_dim = 8;
  config.net.compression = 2;
  config.net.hidden_dim = 16;
  config.trainer.max_epochs = 1;
  core::Elda elda(config);
  elda.Fit(Cohort(), data::Task::kMortality);
  data::EmrSample crazy = Cohort().sample(1);
  for (int64_t t = 0; t < 10; ++t) {
    crazy.value(t, synth::kGlucose) = 1e6f;
    crazy.set_observed(t, synth::kGlucose, true);
  }
  const float risk = elda.PredictRisk({crazy})[0];
  EXPECT_TRUE(std::isfinite(risk));
}

TEST(IntegrationTest, NegativeValueCleaningFlowsThroughPrediction) {
  core::EldaConfig config;
  config.net.embed_dim = 8;
  config.net.compression = 2;
  config.net.hidden_dim = 16;
  config.trainer.max_epochs = 1;
  core::Elda elda(config);
  elda.Fit(Cohort(), data::Task::kMortality);
  data::EmrSample noisy = Cohort().sample(2);
  noisy.value(0, synth::kHr) = -50.0f;  // recording error
  noisy.set_observed(0, synth::kHr, true);
  const float risk = elda.PredictRisk({noisy})[0];
  EXPECT_TRUE(std::isfinite(risk));
}

}  // namespace
}  // namespace elda
