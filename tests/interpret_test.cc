#include <cmath>

#include "core/interpret.h"
#include "gtest/gtest.h"
#include "synth/simulator.h"
#include "tensor/tensor_ops.h"

namespace elda {
namespace core {
namespace {

// A hand-built attention tensor [T=3, C=3, C=3] with known structure.
Tensor HandAttention() {
  Tensor a({3, 3, 3});
  // Hour 0: feature 0 attends mostly to 2; others uniform.
  a.at({0, 0, 1}) = 0.2f;
  a.at({0, 0, 2}) = 0.8f;
  a.at({0, 1, 0}) = 0.5f;
  a.at({0, 1, 2}) = 0.5f;
  a.at({0, 2, 0}) = 0.5f;
  a.at({0, 2, 1}) = 0.5f;
  // Hour 1: all uniform.
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      if (i != j) a.at({1, i, j}) = 0.5f;
    }
  }
  // Hour 2: feature 1 fully focused on 0.
  a.at({2, 0, 1}) = 0.5f;
  a.at({2, 0, 2}) = 0.5f;
  a.at({2, 1, 0}) = 1.0f;
  a.at({2, 2, 0}) = 0.5f;
  a.at({2, 2, 1}) = 0.5f;
  return a;
}

TEST(TopInteractionsTest, RanksOffDiagonalPairs) {
  Tensor a = HandAttention();
  auto top = TopInteractions(a, /*hour=*/0, /*k=*/2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].source, 0);
  EXPECT_EQ(top[0].target, 2);
  EXPECT_FLOAT_EQ(top[0].weight, 0.8f);
  EXPECT_FLOAT_EQ(top[1].weight, 0.5f);
}

TEST(TopInteractionsTest, NeverReturnsDiagonal) {
  Tensor a = HandAttention();
  auto top = TopInteractions(a, 2, 6);
  for (const auto& s : top) EXPECT_NE(s.source, s.target);
}

TEST(TopInteractionsTest, KLargerThanPairsReturnsAll) {
  Tensor a = HandAttention();
  auto top = TopInteractions(a, 1, 100);
  EXPECT_EQ(top.size(), 6u);  // 3*2 off-diagonal entries
}

TEST(AttentionTraceTest, ExtractsPerHourSeries) {
  Tensor a = HandAttention();
  auto trace = AttentionTrace(a, /*source=*/1, /*target=*/0);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_FLOAT_EQ(trace[0], 0.5f);
  EXPECT_FLOAT_EQ(trace[1], 0.5f);
  EXPECT_FLOAT_EQ(trace[2], 1.0f);
}

TEST(AttentionTraceTest, WindowMean) {
  std::vector<float> trace = {0.1f, 0.2f, 0.3f, 0.4f};
  EXPECT_NEAR(TraceWindowMean(trace, 0, 2), 0.15, 1e-6);
  EXPECT_NEAR(TraceWindowMean(trace, 1, 4), 0.3, 1e-6);
}

TEST(AttentionEntropyTest, UniformRowHasMaxEntropy) {
  Tensor a = HandAttention();
  // Hour 1 rows are uniform over 2 targets -> entropy log(2).
  EXPECT_NEAR(AttentionEntropy(a, 1, 0), std::log(2.0), 1e-5);
  // Hour 2 row 1 is fully focused -> entropy 0.
  EXPECT_NEAR(AttentionEntropy(a, 2, 1), 0.0, 1e-6);
  // Hour 0 row 0 (0.2/0.8) is in between.
  const double h = AttentionEntropy(a, 0, 0);
  EXPECT_GT(h, 0.0);
  EXPECT_LT(h, std::log(2.0));
}

TEST(LateAttentionMassTest, ComputesTailFraction) {
  std::vector<double> curve = {0.1, 0.1, 0.1, 0.7};
  EXPECT_NEAR(LateAttentionMass(curve, 1), 0.7, 1e-9);
  EXPECT_NEAR(LateAttentionMass(curve, 2), 0.8, 1e-9);
  EXPECT_NEAR(LateAttentionMass(curve, 4), 1.0, 1e-9);
}

TEST(GroupTimeAttentionTest, SeparatesGroupsAndNormalises) {
  // Train-free check: an untrained EldaNet still produces valid softmax
  // attention; the aggregation must put every patient in exactly one group
  // and produce per-hour means that sum to ~1 across the horizon.
  synth::CohortConfig config = synth::SynthPhysioNet2012();
  config.num_admissions = 60;
  data::EmrDataset cohort = synth::GenerateCohort(config);
  train::PreparedExperiment experiment(cohort, data::Task::kMortality);
  EldaNetConfig net_config;
  net_config.embed_dim = 6;
  net_config.compression = 2;
  net_config.hidden_dim = 8;
  EldaNet net(net_config);

  std::vector<int64_t> all(60);
  for (int64_t i = 0; i < 60; ++i) all[i] = i;
  GroupTimeAttention group = CollectGroupTimeAttention(
      &net, experiment.prepared(), all, data::Task::kMortality, 32);
  EXPECT_EQ(group.positive_count + group.negative_count, 60);
  double pos_sum = 0.0, neg_sum = 0.0;
  for (double v : group.positive_mean) pos_sum += v;
  for (double v : group.negative_mean) neg_sum += v;
  if (group.positive_count > 0) {
    EXPECT_NEAR(pos_sum, 1.0, 1e-3);
  }
  if (group.negative_count > 0) {
    EXPECT_NEAR(neg_sum, 1.0, 1e-3);
  }
  EXPECT_GE(group.positive_volatility, 0.0);
  EXPECT_GE(group.negative_volatility, 0.0);
}

}  // namespace
}  // namespace core
}  // namespace elda
