// Tests for the elda::mem buffer pool and the ELDA_PROF op profiler.
//
// The reuse assertions force the pool on via ScopedPoolEnabled: under
// AddressSanitizer builds the pool defaults to disabled (so ASan keeps its
// use-after-free power), and these tests must not depend on that default.
// The stress test is the ThreadSanitizer target for cross-thread
// acquire/release (tensors allocated on one thread, dropped on another).

#include <atomic>
#include <cstdint>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "mem/pool.h"
#include "mem/prof.h"
#include "par/par.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace elda {
namespace mem {
namespace {

TEST(PoolBucketTest, RoundsUpToPowerOfTwoCapacities) {
  EXPECT_EQ(Pool::BucketFor(0), 0);
  EXPECT_EQ(Pool::BucketFor(1), 0);
  EXPECT_EQ(Pool::BucketFor(64), 0);
  EXPECT_EQ(Pool::BucketFor(65), 1);
  EXPECT_EQ(Pool::BucketCapacity(0), 64);
  EXPECT_EQ(Pool::BucketCapacity(1), 128);
  EXPECT_EQ(Pool::BucketFor(int64_t{1} << 28), Pool::kNumBuckets - 1);
  EXPECT_EQ(Pool::BucketFor((int64_t{1} << 28) + 1), Pool::kHugeBucket);
  for (int64_t n : {1, 63, 64, 65, 100, 1000, 4096, 1 << 20}) {
    const int32_t bucket = Pool::BucketFor(n);
    ASSERT_NE(bucket, Pool::kHugeBucket);
    EXPECT_GE(Pool::BucketCapacity(bucket), n) << "n=" << n;
  }
}

TEST(PoolTest, ReleasedBufferIsReusedForSameBucket) {
  ScopedPoolEnabled force(true);
  Pool& pool = Pool::Global();
  pool.Trim();
  int32_t b1 = 0, b2 = 0;
  float* p1 = pool.Acquire(16000, &b1);
  pool.Release(p1, b1);
  float* p2 = pool.Acquire(9000, &b2);  // same 16384-float bucket
  EXPECT_EQ(b1, b2);
  EXPECT_EQ(p1, p2);
  pool.Release(p2, b2);
}

TEST(PoolTest, PooledBuffersAre64ByteAligned) {
  int32_t bucket = 0;
  float* p = Pool::Global().Acquire(Pool::kMinPooledFloats, &bucket);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 64, 0u);
  Pool::Global().Release(p, bucket);
}

// Requests below kMinPooledFloats are served exact-size by operator new and
// never enter (or come back out of) the freelists — recycling them through
// a process-lifetime pool scatters hot small tensors across the whole heap
// once a large-batch phase has run (see mem/pool.h).
TEST(PoolTest, SmallRequestsBypassFreelists) {
  ScopedPoolEnabled force(true);
  Pool& pool = Pool::Global();
  pool.Trim();
  const PoolStats before = pool.Stats();
  int32_t bucket = 0;
  float* p = pool.Acquire(256, &bucket);
  EXPECT_EQ(bucket, Pool::kSmallBucket);
  p[0] = 1.0f;
  p[255] = 2.0f;
  pool.Release(p, bucket);
  const PoolStats after = pool.Stats();
  EXPECT_EQ(after.small_acquires - before.small_acquires, 1);
  EXPECT_EQ(after.acquires, before.acquires);        // not a pooled acquire
  EXPECT_EQ(after.bytes_cached, before.bytes_cached);  // nothing cached
}

TEST(PoolTest, ZerosTensorIsZeroAfterDirtyReuse) {
  ScopedPoolEnabled force(true);
  Pool::Global().Trim();
  const int64_t n = Pool::kMinPooledFloats;  // pooled: release really caches
  { Tensor dirty = Tensor::Full({n}, 42.0f); }  // released with live bits
  Tensor z = Tensor::Zeros({n});
  for (int64_t i = 0; i < z.size(); ++i) ASSERT_EQ(z[i], 0.0f) << i;
}

TEST(PoolTest, StatsCountAcquiresHitsReleases) {
  ScopedPoolEnabled force(true);
  Pool& pool = Pool::Global();
  pool.Trim();
  const PoolStats before = pool.Stats();
  int32_t bucket = 0;
  float* p = pool.Acquire(Pool::kMinPooledFloats, &bucket);
  pool.Release(p, bucket);
  float* q = pool.Acquire(Pool::kMinPooledFloats, &bucket);
  pool.Release(q, bucket);
  const PoolStats after = pool.Stats();
  EXPECT_EQ(after.acquires - before.acquires, 2);
  EXPECT_GE(after.hits - before.hits, 1);
  EXPECT_EQ(after.releases - before.releases, 2);
  EXPECT_GT(after.hit_rate(), 0.0);
}

TEST(PoolTest, DisabledPoolStillServesValidBuffers) {
  ScopedPoolEnabled force(false);
  int32_t bucket = 0;
  float* p = Pool::Global().Acquire(128, &bucket);
  ASSERT_NE(p, nullptr);
  p[0] = 1.0f;
  p[127] = 2.0f;
  Pool::Global().Release(p, bucket);
}

TEST(PoolTest, HugeRequestBypassesBuckets) {
  ScopedPoolEnabled force(true);
  Pool& pool = Pool::Global();
  const PoolStats before = pool.Stats();
  int32_t bucket = 0;
  // One float past the largest bucket; only the first page is touched, so
  // the 1 GiB reservation stays virtual.
  float* p = pool.Acquire((int64_t{1} << 28) + 1, &bucket);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(bucket, Pool::kHugeBucket);
  p[0] = 1.0f;
  pool.Release(p, bucket);
  const PoolStats after = pool.Stats();
  EXPECT_EQ(after.huge_acquires - before.huge_acquires, 1);
}

TEST(PoolTest, TrimEmptiesTheCache) {
  ScopedPoolEnabled force(true);
  Pool& pool = Pool::Global();
  int32_t bucket = 0;
  float* p = pool.Acquire(Pool::kMinPooledFloats, &bucket);
  pool.Release(p, bucket);
  EXPECT_GT(pool.Stats().bytes_cached, 0);
  pool.Trim();
  EXPECT_EQ(pool.Stats().bytes_cached, 0);
}

TEST(PoolTest, ScopedBufferWorksInsideParallelChunks) {
  par::ScopedNumThreads scoped(4);
  std::atomic<int64_t> touched{0};
  par::ParallelFor(0, 64, 1, [&](int64_t lo, int64_t hi) {
    ScopedBuffer buf(512);
    for (int64_t i = lo; i < hi; ++i) {
      buf.data()[i % 512] = static_cast<float>(i);
      touched.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(touched.load(), 64);
}

// ThreadSanitizer target: buffers acquired on producer threads, released on
// consumer threads, while tensor kernels churn the same pool from a
// ParallelFor region. Any missing synchronization in Acquire/Release or the
// stats counters trips TSan here.
TEST(PoolStressTest, CrossThreadRecycleUnderKernelChurn) {
  ScopedPoolEnabled force(true);
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr int kItersPerProducer = 500;
  std::mutex mu;
  std::vector<std::pair<float*, int32_t>> handoff;
  std::atomic<bool> producers_done{false};
  std::vector<std::thread> producers;
  std::vector<std::thread> consumers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kItersPerProducer; ++i) {
        int32_t bucket = 0;
        // Sizes straddle kMinPooledFloats so both the malloc tier and the
        // freelist tier see cross-thread traffic.
        float* p = Pool::Global().Acquire(
            4096 + (t * 1031 + i * 157) % 12000, &bucket);
        p[0] = static_cast<float>(i);  // touch on the acquiring thread
        std::lock_guard<std::mutex> lock(mu);
        handoff.emplace_back(p, bucket);
      }
    });
  }
  for (int t = 0; t < kConsumers; ++t) {
    consumers.emplace_back([&] {
      for (;;) {
        std::pair<float*, int32_t> item(nullptr, 0);
        {
          std::lock_guard<std::mutex> lock(mu);
          if (!handoff.empty()) {
            item = handoff.back();
            handoff.pop_back();
          }
        }
        if (item.first != nullptr) {
          item.first[0] += 1.0f;  // touch on the releasing thread
          Pool::Global().Release(item.first, item.second);
        } else if (producers_done.load()) {
          return;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  {
    par::ScopedNumThreads scoped(4);
    Rng rng(7);
    Tensor a = Tensor::Normal({64, 64}, 0.0f, 1.0f, &rng);
    for (int i = 0; i < 25; ++i) {
      Tensor c = MatMul(a, a, false, i % 2 == 1);
      a = MulScalar(c, 1.0f / 64.0f);
    }
  }
  for (std::thread& t : producers) t.join();
  producers_done.store(true);
  for (std::thread& t : consumers) t.join();
  const PoolStats stats = Pool::Global().Stats();
  EXPECT_GE(stats.acquires + stats.small_acquires,
            kProducers * kItersPerProducer);
}

TEST(ProfTest, ReportListsOpsPoolAndDispatchStats) {
  prof::Reset();
  prof::SetEnabled(true);
  {
    Tensor a = Tensor::Ones({32, 32});
    Tensor b = Tensor::Ones({32, 32});
    Tensor c = MatMul(a, b);
    Tensor d = Add(c, b);
    Tensor m = Mean(d, 0);
    (void)m;
  }
  prof::SetEnabled(false);
  std::ostringstream os;
  prof::Report(os);
  const std::string report = os.str();
  EXPECT_NE(report.find("MatMul"), std::string::npos) << report;
  EXPECT_NE(report.find("Add"), std::string::npos) << report;
  EXPECT_NE(report.find("Mean"), std::string::npos) << report;
  EXPECT_NE(report.find("pool:"), std::string::npos) << report;
  EXPECT_NE(report.find("par:"), std::string::npos) << report;
  prof::Reset();
}

TEST(ProfTest, DisabledScopeRecordsNothing) {
  prof::SetEnabled(false);
  prof::Reset();
  {
    ELDA_PROF_SCOPE("NeverRecorded");
  }
  std::ostringstream os;
  prof::Report(os);
  EXPECT_EQ(os.str().find("NeverRecorded"), std::string::npos);
}

}  // namespace
}  // namespace mem
}  // namespace elda
