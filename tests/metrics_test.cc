#include <cmath>
#include <limits>
#include <vector>

#include "gtest/gtest.h"
#include "metrics/metrics.h"
#include "util/rng.h"

namespace elda {
namespace metrics {
namespace {

// O(P*N) reference implementation of AUC-ROC with tie handling.
double BruteForceAucRoc(const std::vector<float>& scores,
                        const std::vector<float>& labels) {
  double wins = 0.0;
  int64_t pairs = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (labels[i] != 1.0f) continue;
    for (size_t j = 0; j < scores.size(); ++j) {
      if (labels[j] != 0.0f) continue;
      ++pairs;
      if (scores[i] > scores[j]) {
        wins += 1.0;
      } else if (scores[i] == scores[j]) {
        wins += 0.5;
      }
    }
  }
  return wins / pairs;
}

TEST(BceLossTest, MatchesHandComputedValues) {
  const double loss = BceLoss({0.9f, 0.1f}, {1.0f, 0.0f});
  EXPECT_NEAR(loss, -std::log(0.9), 1e-6);
}

TEST(BceLossTest, PenalisesConfidentMistakes) {
  const double good = BceLoss({0.9f}, {1.0f});
  const double bad = BceLoss({0.1f}, {1.0f});
  EXPECT_GT(bad, good);
}

TEST(BceLossTest, ClampsExtremeProbabilities) {
  const double loss = BceLoss({0.0f, 1.0f}, {1.0f, 0.0f});
  EXPECT_TRUE(std::isfinite(loss));
}

TEST(AucRocTest, PerfectRankingGivesOne) {
  EXPECT_DOUBLE_EQ(AucRoc({0.9f, 0.8f, 0.2f, 0.1f}, {1, 1, 0, 0}), 1.0);
}

TEST(AucRocTest, InvertedRankingGivesZero) {
  EXPECT_DOUBLE_EQ(AucRoc({0.1f, 0.2f, 0.8f, 0.9f}, {1, 1, 0, 0}), 0.0);
}

TEST(AucRocTest, ConstantScoresGiveHalf) {
  EXPECT_DOUBLE_EQ(AucRoc({0.5f, 0.5f, 0.5f, 0.5f}, {1, 0, 1, 0}), 0.5);
}

TEST(AucRocTest, MatchesBruteForceOnRandomData) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<float> scores, labels;
    const int n = 50;
    for (int i = 0; i < n; ++i) {
      // Quantised scores create plenty of ties.
      scores.push_back(static_cast<float>(rng.UniformInt(10)) / 10.0f);
      labels.push_back(rng.Bernoulli(0.3) ? 1.0f : 0.0f);
    }
    labels[0] = 1.0f;  // guarantee both classes
    labels[1] = 0.0f;
    EXPECT_NEAR(AucRoc(scores, labels), BruteForceAucRoc(scores, labels),
                1e-9);
  }
}

TEST(AucRocTest, InvariantToMonotoneTransform) {
  Rng rng(2);
  std::vector<float> scores, labels, transformed;
  for (int i = 0; i < 100; ++i) {
    scores.push_back(static_cast<float>(rng.Uniform(-3, 3)));
    labels.push_back(rng.Bernoulli(0.4) ? 1.0f : 0.0f);
    transformed.push_back(1.0f / (1.0f + std::exp(-scores.back())));
  }
  labels[0] = 1.0f;
  labels[1] = 0.0f;
  EXPECT_NEAR(AucRoc(scores, labels), AucRoc(transformed, labels), 1e-9);
}

TEST(AucPrTest, PerfectRankingGivesOne) {
  EXPECT_NEAR(AucPr({0.9f, 0.8f, 0.2f, 0.1f}, {1, 1, 0, 0}), 1.0, 1e-9);
}

TEST(AucPrTest, RandomScoresApproachPrevalence) {
  Rng rng(3);
  std::vector<float> scores, labels;
  const int n = 20000;
  const double prevalence = 0.2;
  for (int i = 0; i < n; ++i) {
    scores.push_back(static_cast<float>(rng.Uniform()));
    labels.push_back(rng.Bernoulli(prevalence) ? 1.0f : 0.0f);
  }
  labels[0] = 1.0f;
  EXPECT_NEAR(AucPr(scores, labels), prevalence, 0.02);
}

TEST(AucPrTest, KnownSmallCase) {
  // Descending scores: labels 1, 0, 1.
  //   after 1 item: P=1,   R=1/2
  //   after 2 items: P=1/2, R=1/2
  //   after 3 items: P=2/3, R=1
  // Trapezoid from (0,1): 0.5*0.5*(1+1) + 0 + 0.5*0.5*(1/2+2/3) = 0.7916...
  const double area = AucPr({0.9f, 0.5f, 0.1f}, {1, 0, 1});
  EXPECT_NEAR(area, 0.5 + 0.25 * (0.5 + 2.0 / 3.0), 1e-9);
}

TEST(AucPrTest, BetterModelScoresHigherOnImbalancedData) {
  Rng rng(4);
  std::vector<float> good, bad, labels;
  for (int i = 0; i < 2000; ++i) {
    const bool y = rng.Bernoulli(0.15);
    labels.push_back(y ? 1.0f : 0.0f);
    good.push_back(static_cast<float>(y ? rng.Normal(1.0, 1.0)
                                        : rng.Normal(-1.0, 1.0)));
    bad.push_back(static_cast<float>(rng.Normal(0.0, 1.0)));
  }
  labels[0] = 1.0f;
  EXPECT_GT(AucPr(good, labels), AucPr(bad, labels) + 0.2);
}

TEST(AccuracyTest, ThresholdBehaviour) {
  EXPECT_DOUBLE_EQ(Accuracy({0.9f, 0.1f, 0.6f, 0.4f}, {1, 0, 0, 1}), 0.5);
  EXPECT_DOUBLE_EQ(Accuracy({0.9f, 0.1f}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy({0.9f, 0.1f}, {1, 0}, /*threshold=*/0.95f), 0.5);
}

TEST(AggregateTest, MeanAndStd) {
  MeanStd ms = Aggregate({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(ms.mean, 2.5);
  EXPECT_NEAR(ms.stddev, std::sqrt(1.25), 1e-12);
}

TEST(AggregateTest, SingleValueHasZeroStd) {
  MeanStd ms = Aggregate({7.0});
  EXPECT_DOUBLE_EQ(ms.mean, 7.0);
  EXPECT_DOUBLE_EQ(ms.stddev, 0.0);
}

TEST(ConfusionTest, CountsAndDerivedScores) {
  // scores: .9 .8 .3 .1  labels: 1 0 1 0  threshold .5
  Confusion c = ConfusionAt({0.9f, 0.8f, 0.3f, 0.1f}, {1, 0, 1, 0});
  EXPECT_EQ(c.true_positives, 1);
  EXPECT_EQ(c.false_positives, 1);
  EXPECT_EQ(c.true_negatives, 1);
  EXPECT_EQ(c.false_negatives, 1);
  EXPECT_DOUBLE_EQ(c.Precision(), 0.5);
  EXPECT_DOUBLE_EQ(c.Recall(), 0.5);
  EXPECT_DOUBLE_EQ(c.F1(), 0.5);
}

TEST(ConfusionTest, DegenerateCasesAreDefined) {
  // No predicted positives: precision defined as 1, recall 0, F1 0.
  Confusion c = ConfusionAt({0.1f, 0.2f}, {1, 1});
  EXPECT_DOUBLE_EQ(c.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(c.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(c.F1(), 0.0);
}

TEST(BrierTest, KnownValues) {
  EXPECT_DOUBLE_EQ(BrierScore({1.0f, 0.0f}, {1, 0}), 0.0);
  EXPECT_NEAR(BrierScore({0.5f, 0.5f}, {1, 0}), 0.25, 1e-9);
  EXPECT_NEAR(BrierScore({0.0f}, {1.0f}), 1.0, 1e-9);
}

TEST(CalibrationTest, PerfectCalibrationHasLowEce) {
  Rng rng(10);
  std::vector<float> scores, labels;
  for (int i = 0; i < 20000; ++i) {
    const float p = static_cast<float>(rng.Uniform());
    scores.push_back(p);
    labels.push_back(rng.Bernoulli(p) ? 1.0f : 0.0f);
  }
  EXPECT_LT(ExpectedCalibrationError(scores, labels), 0.03);
}

TEST(CalibrationTest, OverconfidentModelHasHighEce) {
  // Always predicts 0.95 while the true rate is 0.5.
  Rng rng(11);
  std::vector<float> scores, labels;
  for (int i = 0; i < 5000; ++i) {
    scores.push_back(0.95f);
    labels.push_back(rng.Bernoulli(0.5) ? 1.0f : 0.0f);
  }
  EXPECT_GT(ExpectedCalibrationError(scores, labels), 0.35);
}

TEST(BootstrapTest, IntervalCoversPointEstimate) {
  Rng rng(12);
  std::vector<float> scores, labels;
  for (int i = 0; i < 400; ++i) {
    const bool y = rng.Bernoulli(0.3);
    labels.push_back(y ? 1.0f : 0.0f);
    scores.push_back(
        static_cast<float>(y ? rng.Normal(0.8, 0.5) : rng.Normal(0.0, 0.5)));
  }
  labels[0] = 1.0f;
  labels[1] = 0.0f;
  Interval ci = BootstrapInterval(&AucRoc, scores, labels, 200, 0.95, 7);
  EXPECT_LE(ci.lower, ci.point);
  EXPECT_GE(ci.upper, ci.point);
  EXPECT_GT(ci.upper - ci.lower, 0.0);
  EXPECT_LT(ci.upper - ci.lower, 0.3);  // reasonably tight at n=400
}

TEST(BootstrapTest, DeterministicForFixedSeed) {
  std::vector<float> scores = {0.9f, 0.7f, 0.4f, 0.2f, 0.8f, 0.1f};
  std::vector<float> labels = {1, 1, 0, 0, 1, 0};
  Interval a = BootstrapInterval(&AucPr, scores, labels, 100, 0.9, 3);
  Interval b = BootstrapInterval(&AucPr, scores, labels, 100, 0.9, 3);
  EXPECT_DOUBLE_EQ(a.lower, b.lower);
  EXPECT_DOUBLE_EQ(a.upper, b.upper);
}

TEST(BootstrapTest, WiderConfidenceGivesWiderInterval) {
  Rng rng(13);
  std::vector<float> scores, labels;
  for (int i = 0; i < 200; ++i) {
    const bool y = rng.Bernoulli(0.4);
    labels.push_back(y ? 1.0f : 0.0f);
    scores.push_back(static_cast<float>(rng.Normal(y ? 0.6 : 0.4, 0.3)));
  }
  labels[0] = 1.0f;
  labels[1] = 0.0f;
  Interval narrow = BootstrapInterval(&AucRoc, scores, labels, 300, 0.8, 5);
  Interval wide = BootstrapInterval(&AucRoc, scores, labels, 300, 0.99, 5);
  EXPECT_GE(wide.upper - wide.lower, narrow.upper - narrow.lower);
}

// Degenerate label sets are routine on tiny validation splits; all three
// reported metrics must return defined values, not NaN or a crash.
TEST(DegenerateLabelsTest, AucRocSingleClassIsChance) {
  EXPECT_DOUBLE_EQ(AucRoc({0.5f, 0.6f}, {1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(AucRoc({0.5f, 0.6f}, {0, 0}), 0.5);
}

TEST(DegenerateLabelsTest, AucPrSingleClassIsPrevalence) {
  EXPECT_DOUBLE_EQ(AucPr({0.5f, 0.6f}, {0, 0}), 0.0);
  EXPECT_NEAR(AucPr({0.5f, 0.6f, 0.7f}, {1, 1, 1}), 1.0, 1e-12);
}

TEST(DegenerateLabelsTest, BceLossSingleClassIsFinite) {
  EXPECT_TRUE(std::isfinite(BceLoss({0.5f, 0.6f}, {1, 1})));
  EXPECT_TRUE(std::isfinite(BceLoss({0.5f, 0.6f}, {0, 0})));
}

TEST(DegenerateLabelsTest, EmptyIndexSetIsDefined) {
  EXPECT_DOUBLE_EQ(BceLoss({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(AucRoc({}, {}), 0.5);
  EXPECT_DOUBLE_EQ(AucPr({}, {}), 0.0);
}

TEST(MetricsDeathTest, RejectsNonBinaryLabels) {
  EXPECT_DEATH(AucRoc({0.5f, 0.6f}, {0.5f, 1.0f}), "binary");
}

// -- Masked (ragged-batch) overloads ----------------------------------------
//
// The valid-mask overloads exist for padded ragged batches: entries with
// valid[i] == 0 are padding and must be excluded before any arithmetic, so
// each masked metric is exactly the dense metric over the kept entries in
// order.

TEST(MaskedMetricsTest, EqualDenseMetricsOverValidEntries) {
  Rng rng(4021);
  std::vector<float> scores, labels, kept_scores, kept_labels;
  std::vector<uint8_t> valid;
  for (int i = 0; i < 400; ++i) {
    const float s = static_cast<float>(rng.Uniform());
    const float y = rng.Uniform() < 0.3 ? 1.0f : 0.0f;
    const uint8_t v = rng.Uniform() < 0.6 ? 1 : 0;
    scores.push_back(s);
    labels.push_back(y);
    valid.push_back(v);
    if (v) {
      kept_scores.push_back(s);
      kept_labels.push_back(y);
    }
  }
  // Exact equality, not NEAR: the masked overload must run the identical
  // float/double arithmetic as the dense one on the filtered vectors.
  EXPECT_EQ(BceLoss(scores, labels, valid), BceLoss(kept_scores, kept_labels));
  EXPECT_EQ(AucRoc(scores, labels, valid), AucRoc(kept_scores, kept_labels));
  EXPECT_EQ(AucPr(scores, labels, valid), AucPr(kept_scores, kept_labels));
}

TEST(MaskedMetricsTest, AllValidMaskIsTheDenseMetric) {
  const std::vector<float> scores = {0.9f, 0.2f, 0.7f, 0.4f, 0.6f};
  const std::vector<float> labels = {1, 0, 1, 0, 1};
  const std::vector<uint8_t> all(scores.size(), 1);
  EXPECT_EQ(BceLoss(scores, labels, all), BceLoss(scores, labels));
  EXPECT_EQ(AucRoc(scores, labels, all), AucRoc(scores, labels));
  EXPECT_EQ(AucPr(scores, labels, all), AucPr(scores, labels));
}

TEST(MaskedMetricsTest, PaddingEntriesAreNeverTouched) {
  // Padding positions hold garbage (non-binary labels, out-of-range scores)
  // that would trip the dense overloads' validation; the mask must filter
  // them out before any check or arithmetic sees them.
  const std::vector<float> scores = {0.9f, 99.0f, 0.2f, -3.0f, 0.7f};
  const std::vector<float> labels = {1.0f, 0.5f, 0.0f, 7.0f, 1.0f};
  const std::vector<uint8_t> valid = {1, 0, 1, 0, 1};
  EXPECT_EQ(BceLoss(scores, labels, valid),
            BceLoss({0.9f, 0.2f, 0.7f}, {1, 0, 1}));
  EXPECT_EQ(AucRoc(scores, labels, valid),
            AucRoc({0.9f, 0.2f, 0.7f}, {1, 0, 1}));
  EXPECT_EQ(AucPr(scores, labels, valid),
            AucPr({0.9f, 0.2f, 0.7f}, {1, 0, 1}));
}

TEST(MaskedMetricsTest, NonFiniteScoresAtValidCellsAreSkipped) {
  // Warm-up steps below a model's min_steps_to_score() emit quiet-NaN risks
  // but sit at valid (non-padding) positions; the masked metrics must skip
  // them, matching the dense metric over the finite valid subset. One leaked
  // NaN would poison the BCE mean and the AUC rankings.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  const std::vector<float> scores = {nan, 0.9f, inf, 0.2f, nan, 0.7f, 0.4f};
  const std::vector<float> labels = {1, 1, 0, 0, 1, 1, 0};
  const std::vector<uint8_t> valid = {1, 1, 1, 1, 0, 1, 1};
  EXPECT_EQ(BceLoss(scores, labels, valid),
            BceLoss({0.9f, 0.2f, 0.7f, 0.4f}, {1, 0, 1, 0}));
  EXPECT_EQ(AucRoc(scores, labels, valid),
            AucRoc({0.9f, 0.2f, 0.7f, 0.4f}, {1, 0, 1, 0}));
  EXPECT_EQ(AucPr(scores, labels, valid),
            AucPr({0.9f, 0.2f, 0.7f, 0.4f}, {1, 0, 1, 0}));
}

TEST(MaskedMetricsTest, AllPaddingDegeneratesLikeEmptyInput) {
  const std::vector<float> scores = {0.5f, 0.6f};
  const std::vector<float> labels = {1, 0};
  const std::vector<uint8_t> none = {0, 0};
  EXPECT_DOUBLE_EQ(BceLoss(scores, labels, none), 0.0);
  EXPECT_DOUBLE_EQ(AucRoc(scores, labels, none), 0.5);
  EXPECT_DOUBLE_EQ(AucPr(scores, labels, none), 0.0);
}

}  // namespace
}  // namespace metrics
}  // namespace elda
