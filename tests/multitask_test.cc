#include <cmath>

#include "core/multitask.h"
#include "gtest/gtest.h"
#include "synth/simulator.h"
#include "tensor/tensor_ops.h"
#include "train/experiment.h"

namespace elda {
namespace core {
namespace {

EldaNetConfig SmallConfig() {
  EldaNetConfig config;
  config.num_features = 6;
  config.embed_dim = 5;
  config.compression = 2;
  config.hidden_dim = 7;
  return config;
}

data::Batch TinyBatch(int64_t batch, int64_t steps, int64_t features,
                      uint64_t seed) {
  Rng rng(seed);
  data::Batch b;
  b.x = Tensor::Normal({batch, steps, features}, 0.0f, 1.0f, &rng);
  b.mask = Tensor::Ones({batch, steps, features});
  b.delta = Tensor::Zeros({batch, steps, features});
  b.y = Tensor({batch});
  for (int64_t i = 0; i < batch; ++i) {
    b.y[i] = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
  }
  return b;
}

TEST(MultiTaskTest, ForwardProducesTwoHeads) {
  MultiTaskEldaNet net(SmallConfig());
  data::Batch batch = TinyBatch(3, 5, 6, 1);
  nn::CaptureSink sink;
  nn::ForwardContext ctx;
  ctx.capture = &sink;
  MultiTaskEldaNet::Logits logits = net.Forward(batch, &ctx);
  EXPECT_EQ(logits.mortality.value().shape(), (std::vector<int64_t>{3}));
  EXPECT_EQ(logits.los_gt7.value().shape(), (std::vector<int64_t>{3}));
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(std::isfinite(logits.mortality.value()[i]));
    EXPECT_TRUE(std::isfinite(logits.los_gt7.value()[i]));
  }
  // Shared trunk captures both attention surfaces.
  EXPECT_EQ(sink.Get("feature_attention").shape(),
            (std::vector<int64_t>{3, 5, 6, 6}));
  EXPECT_EQ(sink.Get("time_attention").shape(), (std::vector<int64_t>{3, 4}));
}

TEST(MultiTaskTest, HeadsAreIndependentAtInit) {
  MultiTaskEldaNet net(SmallConfig());
  data::Batch batch = TinyBatch(4, 5, 6, 2);
  MultiTaskEldaNet::Logits logits = net.Forward(batch);
  // Two differently initialised heads on the same trunk output.
  EXPECT_GT(
      MaxAbsDiff(logits.mortality.value(), logits.los_gt7.value()), 1e-4f);
}

TEST(MultiTaskTest, JointLossBackpropagatesToTrunkAndBothHeads) {
  MultiTaskEldaNet net(SmallConfig());
  data::Batch batch = TinyBatch(4, 5, 6, 3);
  Rng rng(4);
  Tensor los({4});
  for (int64_t i = 0; i < 4; ++i) los[i] = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
  net.ZeroGrad();
  MultiTaskEldaNet::Logits logits = net.Forward(batch);
  net.JointLoss(logits, batch.y, los).Backward();
  int64_t with_grad = 0;
  for (const auto& p : net.Parameters()) with_grad += p.has_grad();
  EXPECT_EQ(with_grad, static_cast<int64_t>(net.Parameters().size()));
}

TEST(MultiTaskTest, JointLossIsMeanOfTaskLosses) {
  MultiTaskEldaNet net(SmallConfig());
  data::Batch batch = TinyBatch(4, 5, 6, 5);
  Tensor los = batch.y;  // identical labels -> joint == each task's BCE mean
  MultiTaskEldaNet::Logits logits = net.Forward(batch);
  const float joint = net.JointLoss(logits, batch.y, los).value()[0];
  const float lm = ag::BceWithLogits(logits.mortality, batch.y).value()[0];
  const float ll = ag::BceWithLogits(logits.los_gt7, los).value()[0];
  EXPECT_NEAR(joint, 0.5f * (lm + ll), 1e-5f);
}

TEST(MultiTaskTest, SharedTrunkIsSmallerThanTwoNets) {
  EldaNetConfig config = SmallConfig();
  MultiTaskEldaNet joint(config);
  EldaNet single(config);
  // Two independent nets would double everything; the joint model adds only
  // one extra head over a single net.
  EXPECT_LT(joint.NumParameters(), 2 * single.NumParameters());
  EXPECT_GT(joint.NumParameters(), single.NumParameters());
}

TEST(MultiTaskTest, TrainsOnBothEndpointsEndToEnd) {
  synth::CohortConfig cohort_config = synth::SynthPhysioNet2012();
  cohort_config.num_admissions = 200;
  data::EmrDataset cohort = synth::GenerateCohort(cohort_config);
  train::PreparedExperiment experiment(cohort, data::Task::kMortality);
  EldaNetConfig config;  // full-size features, small dims for speed
  config.embed_dim = 8;
  config.compression = 2;
  config.hidden_dim = 12;
  MultiTaskEldaNet net(config);
  MultiTaskResult result =
      TrainMultiTask(&net, experiment.prepared(), experiment.split(),
                     /*max_epochs=*/3, /*batch_size=*/32,
                     /*learning_rate=*/1e-3f, /*seed=*/1);
  EXPECT_EQ(result.num_parameters, net.NumParameters());
  // Both endpoints evaluated on the test split with sane metric ranges.
  for (double v : {result.mortality_auc_pr, result.mortality_auc_roc,
                   result.los_auc_pr, result.los_auc_roc}) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(MultiTaskDeathTest, RequiresFullTrunk) {
  EldaNetConfig config = EldaNetConfig::VariantT();
  EXPECT_DEATH(MultiTaskEldaNet net(config), "full ELDA-Net");
}

}  // namespace
}  // namespace core
}  // namespace elda
