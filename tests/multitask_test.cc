#include <cmath>

#include "core/multitask.h"
#include "gtest/gtest.h"
#include "synth/simulator.h"
#include "tensor/tensor_ops.h"
#include "train/experiment.h"
#include "train/trainer.h"

namespace elda {
namespace core {
namespace {

EldaNetConfig SmallConfig() {
  EldaNetConfig config;
  config.num_features = 6;
  config.embed_dim = 5;
  config.compression = 2;
  config.hidden_dim = 7;
  return config;
}

data::Batch TinyBatch(int64_t batch, int64_t steps, int64_t features,
                      uint64_t seed) {
  Rng rng(seed);
  data::Batch b;
  b.x = Tensor::Normal({batch, steps, features}, 0.0f, 1.0f, &rng);
  b.mask = Tensor::Ones({batch, steps, features});
  b.delta = Tensor::Zeros({batch, steps, features});
  b.y = Tensor({batch});
  b.y_los = Tensor({batch});
  for (int64_t i = 0; i < batch; ++i) {
    b.y[i] = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
    b.y_los[i] = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
  }
  b.lengths.assign(batch, steps);
  return b;
}

TEST(MultiTaskTest, ForwardProducesTwoHeads) {
  MultiTaskElda elda = MakeMultiTaskElda(SmallConfig());
  data::Batch batch = TinyBatch(3, 5, 6, 1);
  nn::CaptureSink sink;
  nn::ForwardContext ctx;
  ctx.capture = &sink;
  train::Encoding enc = elda.trunk->Encode(batch, &ctx);
  std::vector<ag::Variable> logits = elda.heads->Logits(*elda.trunk, enc, &ctx);
  ASSERT_EQ(logits.size(), 2u);
  EXPECT_EQ(elda.heads->head(0).task_name(), "mortality");
  EXPECT_EQ(elda.heads->head(1).task_name(), "los");
  EXPECT_EQ(logits[0].value().shape(), (std::vector<int64_t>{3}));
  EXPECT_EQ(logits[1].value().shape(), (std::vector<int64_t>{3}));
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(std::isfinite(logits[0].value()[i]));
    EXPECT_TRUE(std::isfinite(logits[1].value()[i]));
  }
  // Shared trunk captures both attention surfaces.
  EXPECT_EQ(sink.Get("feature_attention").shape(),
            (std::vector<int64_t>{3, 5, 6, 6}));
  EXPECT_EQ(sink.Get("time_attention").shape(), (std::vector<int64_t>{3, 4}));
}

TEST(MultiTaskTest, HeadsAreIndependentAtInit) {
  MultiTaskElda elda = MakeMultiTaskElda(SmallConfig());
  data::Batch batch = TinyBatch(4, 5, 6, 2);
  nn::ForwardContext ctx;
  train::Encoding enc = elda.trunk->Encode(batch, &ctx);
  std::vector<ag::Variable> logits = elda.heads->Logits(*elda.trunk, enc, &ctx);
  // Two differently initialised heads on the same trunk output.
  EXPECT_GT(MaxAbsDiff(logits[0].value(), logits[1].value()), 1e-4f);
}

TEST(MultiTaskTest, JointLossBackpropagatesToTrunkAndBothHeads) {
  MultiTaskElda elda = MakeMultiTaskElda(SmallConfig());
  train::ModelWithHead bundle(elda.trunk.get(), elda.heads.get());
  data::Batch batch = TinyBatch(4, 5, 6, 3);
  bundle.ZeroGrad();
  nn::ForwardContext ctx;
  train::Encoding enc = elda.trunk->Encode(batch, &ctx);
  elda.heads->JointLoss(*elda.trunk, enc, batch, &ctx).Backward();
  int64_t with_grad = 0;
  for (const auto& p : bundle.Parameters()) with_grad += p.has_grad();
  EXPECT_EQ(with_grad, static_cast<int64_t>(bundle.Parameters().size()));
}

TEST(MultiTaskTest, JointLossIsMeanOfTaskLosses) {
  MultiTaskElda elda = MakeMultiTaskElda(SmallConfig());
  data::Batch batch = TinyBatch(4, 5, 6, 5);
  nn::ForwardContext ctx;
  train::Encoding enc = elda.trunk->Encode(batch, &ctx);
  std::vector<ag::Variable> logits = elda.heads->Logits(*elda.trunk, enc, &ctx);
  const float joint =
      elda.heads->JointLoss(*elda.trunk, enc, batch, &ctx).value()[0];
  const float lm = ag::BceWithLogits(logits[0], batch.y).value()[0];
  const float ll = ag::BceWithLogits(logits[1], batch.y_los).value()[0];
  EXPECT_NEAR(joint, 0.5f * (lm + ll), 1e-5f);
}

TEST(MultiTaskTest, SharedTrunkIsSmallerThanTwoNets) {
  EldaNetConfig config = SmallConfig();
  MultiTaskElda joint = MakeMultiTaskElda(config);
  train::ModelWithHead bundle(joint.trunk.get(), joint.heads.get());
  EldaNet single(config);
  // Two independent nets would double everything; the joint deployment adds
  // only one extra linear head over a single net.
  EXPECT_LT(bundle.NumParameters(), 2 * single.NumParameters());
  EXPECT_GT(bundle.NumParameters(), single.NumParameters());
}

TEST(MultiTaskTest, TrainsOnBothEndpointsEndToEnd) {
  synth::CohortConfig cohort_config = synth::SynthPhysioNet2012();
  cohort_config.num_admissions = 200;
  data::EmrDataset cohort = synth::GenerateCohort(cohort_config);
  train::PreparedExperiment experiment(cohort, data::Task::kMortality);
  EldaNetConfig config;  // full-size features, small dims for speed
  config.embed_dim = 8;
  config.compression = 2;
  config.hidden_dim = 12;
  MultiTaskElda elda = MakeMultiTaskElda(config);
  train::TrainerConfig trainer_config;
  trainer_config.max_epochs = 3;
  trainer_config.batch_size = 32;
  trainer_config.seed = 1;
  train::Trainer trainer(trainer_config);
  train::MultiTaskTrainResult result = trainer.TrainMultiTask(
      elda.trunk.get(), elda.heads.get(), experiment.prepared(),
      experiment.split(), data::Task::kMortality);
  train::ModelWithHead bundle(elda.trunk.get(), elda.heads.get());
  EXPECT_EQ(result.num_parameters, bundle.NumParameters());
  ASSERT_EQ(result.test.tasks,
            (std::vector<std::string>{"mortality", "los"}));
  // Both endpoints evaluated on the test split with sane metric ranges.
  for (double v :
       {result.test.ForTask("mortality").auc_pr,
        result.test.ForTask("mortality").auc_roc,
        result.test.ForTask("los").auc_pr,
        result.test.ForTask("los").auc_roc}) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  EXPECT_EQ(result.status, health::TrainStatus::kOk);
}

TEST(MultiTaskDeathTest, RequiresFullTrunk) {
  EldaNetConfig config = EldaNetConfig::VariantT();
  EXPECT_DEATH(MakeMultiTaskElda(config), "full ELDA-Net");
}

}  // namespace
}  // namespace core
}  // namespace elda
