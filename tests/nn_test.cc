#include <cmath>
#include <string>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "gtest/gtest.h"
#include "nn/gru.h"
#include "nn/init.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/module.h"
#include "tensor/tensor_ops.h"

namespace elda {
namespace nn {
namespace {

void ExpectModuleGradCheck(const std::function<ag::Variable()>& f,
                           const Module& module) {
  std::string error;
  ag::GradCheckOptions options;
  options.max_elements_per_param = 24;
  EXPECT_TRUE(ag::CheckGradients(f, module.Parameters(), options, &error))
      << error;
}

TEST(ModuleTest, ParameterRegistrationAndCounting) {
  Rng rng(1);
  Linear layer(5, 3, /*use_bias=*/true, &rng);
  EXPECT_EQ(layer.NumParameters(), 5 * 3 + 3);
  EXPECT_EQ(layer.Parameters().size(), 2u);
}

TEST(ModuleTest, NamedParametersIncludeSubmodulePrefixes) {
  Rng rng(2);
  Gru gru(4, 6, &rng);
  auto named = gru.NamedParameters();
  ASSERT_EQ(named.size(), 3u);
  EXPECT_EQ(named[0].first, "cell.w_ih");
  EXPECT_EQ(named[1].first, "cell.w_hh");
  EXPECT_EQ(named[2].first, "cell.bias");
}

TEST(ModuleTest, TrainingModePropagates) {
  Rng rng(3);
  Gru gru(4, 6, &rng);
  EXPECT_TRUE(gru.training());
  gru.SetTraining(false);
  EXPECT_FALSE(gru.training());
  EXPECT_FALSE(gru.cell().training());
}

TEST(ModuleTest, ZeroGradClearsAllParameters) {
  Rng rng(4);
  Linear layer(3, 2, true, &rng);
  ag::Variable x = ag::Constant(Tensor::Ones({4, 3}));
  ag::SumAll(layer.Forward(x)).Backward();
  for (const auto& p : layer.Parameters()) EXPECT_TRUE(p.has_grad());
  layer.ZeroGrad();
  for (const auto& p : layer.Parameters()) EXPECT_FALSE(p.has_grad());
}

TEST(InitTest, XavierUniformWithinLimit) {
  Rng rng(5);
  Tensor w = XavierUniform2d(100, 50, &rng);
  const float limit = std::sqrt(6.0f / 150.0f);
  for (int64_t i = 0; i < w.size(); ++i) {
    EXPECT_LE(std::fabs(w[i]), limit);
  }
}

TEST(InitTest, HeNormalVarianceScalesWithFanIn) {
  Rng rng(6);
  Tensor w = HeNormal(200, {200, 100}, &rng);
  double sum_sq = 0.0;
  for (int64_t i = 0; i < w.size(); ++i) sum_sq += w[i] * w[i];
  EXPECT_NEAR(sum_sq / w.size(), 2.0 / 200.0, 2e-3);
}

TEST(LinearTest, ForwardComputesAffineMap) {
  Rng rng(7);
  Linear layer(2, 2, true, &rng);
  // Overwrite the parameters with known values.
  auto params = layer.Parameters();
  *params[0].mutable_value() = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  *params[1].mutable_value() = Tensor::FromData({2}, {10, 20});
  ag::Variable x = ag::Constant(Tensor::FromData({1, 2}, {1, 1}));
  Tensor y = layer.Forward(x).value();
  EXPECT_FLOAT_EQ((y.at({0, 0})), 1 + 3 + 10);
  EXPECT_FLOAT_EQ((y.at({0, 1})), 2 + 4 + 20);
}

TEST(LinearTest, SupportsTimeMajorInput) {
  Rng rng(8);
  Linear layer(5, 3, true, &rng);
  ag::Variable x = ag::Constant(Tensor::Ones({2, 7, 5}));
  Tensor y = layer.Forward(x).value();
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{2, 7, 3}));
}

TEST(LinearTest, NoBiasVariantHasFewerParams) {
  Rng rng(9);
  Linear layer(5, 3, /*use_bias=*/false, &rng);
  EXPECT_EQ(layer.NumParameters(), 15);
}

TEST(LinearTest, GradCheck) {
  Rng rng(10);
  Linear layer(4, 3, true, &rng);
  Rng data_rng(11);
  ag::Variable x =
      ag::Constant(Tensor::Normal({5, 4}, 0.0f, 1.0f, &data_rng));
  ExpectModuleGradCheck(
      [&] { return ag::SumAll(ag::Square(layer.Forward(x))); }, layer);
}

TEST(GruTest, OutputShapeAndDeterminism) {
  Rng rng(12);
  Gru gru(3, 5, &rng);
  Rng data_rng(13);
  ag::Variable x =
      ag::Constant(Tensor::Normal({2, 7, 3}, 0.0f, 1.0f, &data_rng));
  Tensor h1 = gru.Forward(x).value();
  Tensor h2 = gru.Forward(x).value();
  EXPECT_EQ(h1.shape(), (std::vector<int64_t>{2, 7, 5}));
  EXPECT_TRUE(AllClose(h1, h2));
}

TEST(GruTest, HiddenStaysBounded) {
  // GRU hidden state is a convex combination of tanh outputs and previous
  // state, so |h| <= 1 everywhere.
  Rng rng(14);
  Gru gru(3, 4, &rng);
  Rng data_rng(15);
  ag::Variable x =
      ag::Constant(Tensor::Normal({2, 20, 3}, 0.0f, 5.0f, &data_rng));
  Tensor h = gru.Forward(x).value();
  for (int64_t i = 0; i < h.size(); ++i) {
    EXPECT_LE(std::fabs(h[i]), 1.0f + 1e-5f);
  }
}

TEST(GruTest, ZeroInputKeepsZeroBiasStateSmall) {
  Rng rng(16);
  Gru gru(3, 4, &rng);
  ag::Variable x = ag::Constant(Tensor::Zeros({1, 5, 3}));
  Tensor h = gru.Forward(x).value();
  // With zero input and zero initial state, n_t = tanh(0) = 0 so h stays 0.
  for (int64_t i = 0; i < h.size(); ++i) EXPECT_NEAR(h[i], 0.0f, 1e-6f);
}

TEST(GruTest, ForwardStepsMatchesForward) {
  Rng rng(17);
  Gru gru(3, 4, &rng);
  Rng data_rng(18);
  ag::Variable x =
      ag::Constant(Tensor::Normal({2, 6, 3}, 0.0f, 1.0f, &data_rng));
  Tensor all = gru.Forward(x).value();
  auto steps = gru.ForwardSteps(x);
  ASSERT_EQ(steps.size(), 6u);
  for (int64_t t = 0; t < 6; ++t) {
    Tensor slice = Slice(all, 1, t, 1).Reshape({2, 4});
    EXPECT_TRUE(AllClose(slice, steps[t].value()));
  }
}

TEST(GruTest, ParameterCountMatchesFormula) {
  Rng rng(19);
  Gru gru(37, 64, &rng);
  EXPECT_EQ(gru.NumParameters(), 3 * (37 * 64 + 64 * 64 + 64));
}

TEST(GruTest, GradCheckThroughTime) {
  Rng rng(20);
  Gru gru(2, 3, &rng);
  Rng data_rng(21);
  ag::Variable x =
      ag::Constant(Tensor::Normal({2, 4, 2}, 0.0f, 1.0f, &data_rng));
  ExpectModuleGradCheck(
      [&] { return ag::SumAll(ag::Square(gru.Forward(x))); }, gru);
}

TEST(LstmTest, OutputShape) {
  Rng rng(22);
  Lstm lstm(3, 5, &rng);
  Rng data_rng(23);
  ag::Variable x =
      ag::Constant(Tensor::Normal({2, 7, 3}, 0.0f, 1.0f, &data_rng));
  EXPECT_EQ(lstm.Forward(x).value().shape(), (std::vector<int64_t>{2, 7, 5}));
}

TEST(LstmTest, ForgetBiasInitialisedToOne) {
  Rng rng(24);
  Lstm lstm(3, 4, &rng);
  auto named = lstm.NamedParameters();
  // bias layout: [i | f | g | o], each of width 4.
  const Tensor& bias = named[2].second.value();
  ASSERT_EQ(named[2].first, "cell.bias");
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(bias[i], 0.0f);
  for (int64_t i = 4; i < 8; ++i) EXPECT_EQ(bias[i], 1.0f);
}

TEST(LstmTest, HiddenBounded) {
  Rng rng(25);
  Lstm lstm(3, 4, &rng);
  Rng data_rng(26);
  ag::Variable x =
      ag::Constant(Tensor::Normal({1, 15, 3}, 0.0f, 3.0f, &data_rng));
  Tensor h = lstm.Forward(x).value();
  for (int64_t i = 0; i < h.size(); ++i) {
    EXPECT_LE(std::fabs(h[i]), 1.0f + 1e-5f);
  }
}

TEST(LstmTest, GradCheckThroughTime) {
  Rng rng(27);
  Lstm lstm(2, 3, &rng);
  Rng data_rng(28);
  ag::Variable x =
      ag::Constant(Tensor::Normal({2, 4, 2}, 0.0f, 1.0f, &data_rng));
  ExpectModuleGradCheck(
      [&] { return ag::SumAll(ag::Square(lstm.Forward(x))); }, lstm);
}

TEST(LstmTest, ParameterCountMatchesFormula) {
  Rng rng(29);
  Lstm lstm(10, 8, &rng);
  EXPECT_EQ(lstm.NumParameters(), 4 * (10 * 8 + 8 * 8 + 8));
}

TEST(LayerNormTest, NormalisesLastAxisAtInit) {
  LayerNorm norm(6);
  Rng rng(30);
  ag::Variable x =
      ag::Constant(Tensor::Normal({4, 5, 6}, 3.0f, 2.0f, &rng));
  Tensor y = norm.Forward(x).value();
  for (int64_t b = 0; b < 4; ++b) {
    for (int64_t t = 0; t < 5; ++t) {
      double mean = 0.0, var = 0.0;
      for (int64_t k = 0; k < 6; ++k) mean += y.at({b, t, k});
      mean /= 6.0;
      for (int64_t k = 0; k < 6; ++k) {
        var += (y.at({b, t, k}) - mean) * (y.at({b, t, k}) - mean);
      }
      var /= 6.0;
      EXPECT_NEAR(mean, 0.0, 1e-4);
      EXPECT_NEAR(var, 1.0, 1e-2);
    }
  }
}

TEST(LayerNormTest, InvariantToInputShiftAndScale) {
  LayerNorm norm(5);
  Rng rng(31);
  Tensor base = Tensor::Normal({3, 5}, 0.0f, 1.0f, &rng);
  Tensor shifted = AddScalar(MulScalar(base, 4.0f), 7.0f);
  Tensor y1 = norm.Forward(ag::Constant(base)).value();
  Tensor y2 = norm.Forward(ag::Constant(shifted)).value();
  EXPECT_TRUE(AllClose(y1, y2, 1e-4f, 1e-3f));
}

TEST(LayerNormTest, GainAndBiasAreLearnable) {
  LayerNorm norm(4);
  EXPECT_EQ(norm.NumParameters(), 8);
  Rng rng(32);
  ag::Variable x =
      ag::Constant(Tensor::Normal({3, 4}, 0.0f, 1.0f, &rng));
  ExpectModuleGradCheck(
      [&] { return ag::SumAll(ag::Square(norm.Forward(x))); }, norm);
}

TEST(LayerNormTest, HandlesConstantRowsWithoutNan) {
  LayerNorm norm(4);
  ag::Variable x = ag::Constant(Tensor::Full({2, 4}, 3.0f));
  Tensor y = norm.Forward(x).value();
  for (int64_t i = 0; i < y.size(); ++i) {
    EXPECT_TRUE(std::isfinite(y[i]));
    EXPECT_NEAR(y[i], 0.0f, 1e-3f);  // zero-centred, epsilon-regularised
  }
}

}  // namespace
}  // namespace nn
}  // namespace elda
