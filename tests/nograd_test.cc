// No-grad inference equivalence: under ag::NoGradScope every registry model
// must produce bitwise-identical predictions to the taped path while
// allocating zero tape nodes.

#include <cstdint>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "baselines/baselines.h"
#include "gtest/gtest.h"
#include "tensor/tensor.h"

namespace elda {
namespace {

data::Batch RandomBatch(int64_t batch, int64_t steps, int64_t features,
                        uint64_t seed) {
  Rng rng(seed);
  data::Batch b;
  b.x = Tensor::Normal({batch, steps, features}, 0.0f, 1.0f, &rng);
  b.mask = Tensor({batch, steps, features});
  for (int64_t i = 0; i < b.mask.size(); ++i) {
    b.mask[i] = rng.Bernoulli(0.6) ? 1.0f : 0.0f;
  }
  b.delta = Tensor({batch, steps, features});
  for (int64_t i = 0; i < b.delta.size(); ++i) {
    b.delta[i] = static_cast<float>(rng.Uniform() * 3.0);
  }
  b.y = Tensor({batch});
  for (int64_t i = 0; i < batch; ++i) {
    b.y[i] = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
  }
  return b;
}

std::vector<std::string> AllRegistryNames() {
  std::vector<std::string> names = baselines::AllModelNames();
  names.push_back("ELDA-Net-Fbi*");
  names.push_back("ELDA-Net-Ffm*");
  return names;
}

TEST(NoGradTest, GradModeIsScopedAndRestored) {
  EXPECT_TRUE(ag::GradEnabled());
  {
    ag::NoGradScope outer;
    EXPECT_FALSE(ag::GradEnabled());
    {
      ag::NoGradScope inner;
      EXPECT_FALSE(ag::GradEnabled());
    }
    EXPECT_FALSE(ag::GradEnabled());
  }
  EXPECT_TRUE(ag::GradEnabled());
}

TEST(NoGradTest, DetachedOpsCannotBackward) {
  ag::NoGradScope no_grad;
  ag::Variable w(Tensor::Ones({2, 2}), /*requires_grad=*/true);
  ag::Variable out = ag::SumAll(ag::Square(w));
  EXPECT_FALSE(out.requires_grad());
}

TEST(NoGradTest, EveryRegistryModelIsBitwiseIdenticalWithZeroTapeNodes) {
  const int64_t features = 5;
  const data::Batch batch = RandomBatch(4, 6, features, 77);
  for (const std::string& name : AllRegistryNames()) {
    SCOPED_TRACE(name);
    auto model = baselines::MakeModel(name, features, /*seed=*/3);

    const int64_t taped_before = ag::TapeNodesAllocated();
    const Tensor taped = model->Forward(batch).value();
    const int64_t taped_nodes = ag::TapeNodesAllocated() - taped_before;
    EXPECT_GT(taped_nodes, 0) << "taped forward should build a graph";

    Tensor inference;
    int64_t nograd_nodes = -1;
    {
      ag::NoGradScope no_grad;
      const int64_t before = ag::TapeNodesAllocated();
      inference = model->Forward(batch).value();
      nograd_nodes = ag::TapeNodesAllocated() - before;
    }
    EXPECT_EQ(nograd_nodes, 0) << "no-grad forward must not build a tape";

    ASSERT_EQ(inference.size(), taped.size());
    for (int64_t i = 0; i < taped.size(); ++i) {
      EXPECT_EQ(inference[i], taped[i]) << "logit " << i;
    }
  }
}

}  // namespace
}  // namespace elda
