#include <cmath>

#include "autograd/ops.h"
#include "gtest/gtest.h"
#include "optim/optimizer.h"
#include "tensor/tensor_ops.h"

namespace elda {
namespace optim {
namespace {

// Loss = sum((w - target)^2); the unique minimum is w = target.
ag::Variable QuadraticLoss(const ag::Variable& w, const Tensor& target) {
  return ag::SumAll(ag::Square(ag::Sub(w, ag::Constant(target))));
}

TEST(SgdTest, ConvergesOnQuadratic) {
  ag::Variable w(Tensor::FromData({3}, {5.0f, -3.0f, 2.0f}), true);
  Tensor target = Tensor::FromData({3}, {1.0f, 2.0f, -1.0f});
  Sgd sgd({w}, 0.1f);
  for (int step = 0; step < 100; ++step) {
    sgd.ZeroGrad();
    QuadraticLoss(w, target).Backward();
    sgd.Step();
  }
  EXPECT_TRUE(AllClose(w.value(), target, 1e-4f, 1e-4f));
}

TEST(SgdTest, SingleStepMatchesHandComputation) {
  ag::Variable w(Tensor::FromData({1}, {2.0f}), true);
  Tensor target = Tensor::FromData({1}, {0.0f});
  Sgd sgd({w}, 0.25f);
  QuadraticLoss(w, target).Backward();  // grad = 2w = 4
  sgd.Step();
  EXPECT_FLOAT_EQ(w.value()[0], 2.0f - 0.25f * 4.0f);
}

TEST(SgdTest, MomentumAcceleratesAlongConsistentGradient) {
  ag::Variable w1(Tensor::FromData({1}, {10.0f}), true);
  ag::Variable w2(Tensor::FromData({1}, {10.0f}), true);
  Tensor target = Tensor::FromData({1}, {0.0f});
  Sgd plain({w1}, 0.01f);
  Sgd momentum({w2}, 0.01f, 0.9f);
  for (int step = 0; step < 20; ++step) {
    plain.ZeroGrad();
    QuadraticLoss(w1, target).Backward();
    plain.Step();
    momentum.ZeroGrad();
    QuadraticLoss(w2, target).Backward();
    momentum.Step();
  }
  EXPECT_LT(std::fabs(w2.value()[0]), std::fabs(w1.value()[0]));
}

TEST(SgdTest, SkipsParametersWithoutGradients) {
  ag::Variable used(Tensor::FromData({1}, {1.0f}), true);
  ag::Variable unused(Tensor::FromData({1}, {7.0f}), true);
  Sgd sgd({used, unused}, 0.5f);
  QuadraticLoss(used, Tensor::FromData({1}, {0.0f})).Backward();
  sgd.Step();
  EXPECT_FLOAT_EQ(unused.value()[0], 7.0f);
  EXPECT_NE(used.value()[0], 1.0f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  ag::Variable w(Tensor::FromData({4}, {5.0f, -5.0f, 3.0f, 0.5f}), true);
  Tensor target = Tensor::FromData({4}, {1.0f, 1.0f, 1.0f, 1.0f});
  Adam adam({w}, 0.1f);
  for (int step = 0; step < 300; ++step) {
    adam.ZeroGrad();
    QuadraticLoss(w, target).Backward();
    adam.Step();
  }
  EXPECT_TRUE(AllClose(w.value(), target, 1e-3f, 1e-3f));
}

TEST(AdamTest, FirstStepSizeIsApproximatelyLr) {
  // With bias correction, the very first Adam update has magnitude ~lr
  // regardless of gradient scale.
  ag::Variable w(Tensor::FromData({1}, {100.0f}), true);
  Adam adam({w}, 0.01f);
  QuadraticLoss(w, Tensor::FromData({1}, {0.0f})).Backward();
  adam.Step();
  EXPECT_NEAR(w.value()[0], 100.0f - 0.01f, 1e-4f);
}

TEST(AdamTest, HandlesSparseGradientSteps) {
  ag::Variable w(Tensor::FromData({1}, {1.0f}), true);
  Adam adam({w}, 0.1f);
  // Alternate steps with and without gradients; must not crash or corrupt.
  for (int step = 0; step < 10; ++step) {
    adam.ZeroGrad();
    if (step % 2 == 0) {
      QuadraticLoss(w, Tensor::FromData({1}, {0.0f})).Backward();
    }
    adam.Step();
  }
  EXPECT_TRUE(std::isfinite(w.value()[0]));
  EXPECT_LT(std::fabs(w.value()[0]), 1.0f);
}

TEST(AdamTest, DecoupledWeightDecayShrinksUnusedParameters) {
  // With decay, a parameter that receives zero gradient still shrinks...
  // no: decoupled decay only applies on steps where the parameter has a
  // gradient (our Step skips grad-less params entirely). Verify the decay
  // pulls a trained parameter toward a smaller norm than without decay.
  ag::Variable w1(Tensor::FromData({1}, {2.0f}), true);
  ag::Variable w2(Tensor::FromData({1}, {2.0f}), true);
  Adam plain({w1}, 0.05f);
  Adam decayed({w2}, 0.05f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.1f);
  Tensor target = Tensor::FromData({1}, {1.5f});
  for (int step = 0; step < 100; ++step) {
    plain.ZeroGrad();
    QuadraticLoss(w1, target).Backward();
    plain.Step();
    decayed.ZeroGrad();
    QuadraticLoss(w2, target).Backward();
    decayed.Step();
  }
  // Both approach the target; the decayed one settles strictly below it.
  EXPECT_NEAR(w1.value()[0], 1.5f, 0.02f);
  EXPECT_LT(w2.value()[0], w1.value()[0] - 0.005f);
}

TEST(StepDecayScheduleTest, HalvesLearningRateOnSchedule) {
  ag::Variable w(Tensor::FromData({1}, {1.0f}), true);
  Adam adam({w}, 0.1f);
  StepDecaySchedule schedule(&adam, /*step_size=*/2, /*gamma=*/0.5f);
  EXPECT_FLOAT_EQ(adam.lr(), 0.1f);
  schedule.OnEpochEnd();  // epoch 1
  EXPECT_FLOAT_EQ(adam.lr(), 0.1f);
  schedule.OnEpochEnd();  // epoch 2 -> decay
  EXPECT_FLOAT_EQ(adam.lr(), 0.05f);
  schedule.OnEpochEnd();  // epoch 3
  schedule.OnEpochEnd();  // epoch 4 -> decay
  EXPECT_FLOAT_EQ(adam.lr(), 0.025f);
  EXPECT_EQ(schedule.epoch(), 4);
}

TEST(ClipTest, ReturnsNormAndLeavesSmallGradientsAlone) {
  ag::Variable w(Tensor::FromData({2}, {0.3f, 0.4f}), true);
  ag::SumAll(ag::Mul(w, ag::Constant(Tensor::FromData({2}, {0.3f, 0.4f}))))
      .Backward();
  // grad = (0.3, 0.4), norm = 0.5.
  const float norm = ClipGradNorm({w}, 1.0f);
  EXPECT_NEAR(norm, 0.5f, 1e-6f);
  EXPECT_NEAR(w.grad()[0], 0.3f, 1e-6f);
}

TEST(ClipTest, RescalesLargeGradients) {
  ag::Variable w(Tensor::FromData({2}, {3.0f, 4.0f}), true);
  ag::SumAll(ag::Mul(w, ag::Constant(Tensor::FromData({2}, {3.0f, 4.0f}))))
      .Backward();
  // grad = (3, 4), norm = 5 -> clipped to norm 1.
  const float norm = ClipGradNorm({w}, 1.0f);
  EXPECT_NEAR(norm, 5.0f, 1e-5f);
  const float new_norm = std::sqrt(w.grad()[0] * w.grad()[0] +
                                   w.grad()[1] * w.grad()[1]);
  EXPECT_NEAR(new_norm, 1.0f, 1e-5f);
  // Direction preserved.
  EXPECT_NEAR(w.grad()[1] / w.grad()[0], 4.0f / 3.0f, 1e-5f);
}

TEST(OptimizerDeathTest, RejectsNonTrainableParams) {
  ag::Variable constant(Tensor::FromData({1}, {1.0f}), false);
  EXPECT_DEATH(Sgd({constant}, 0.1f), "CHECK failed");
}

}  // namespace
}  // namespace optim
}  // namespace elda
