// Tests for the elda::par execution substrate and for the determinism
// contract of the parallelized tensor kernels: every kernel must produce
// bitwise-identical outputs for any thread count (the threaded partitioning
// only splits disjoint output ranges, never the per-element arithmetic).

#include <atomic>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "gtest/gtest.h"
#include "par/par.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace elda {
namespace par {
namespace {

// --- Pool / ParallelFor mechanics -----------------------------------------

TEST(ParTest, NumThreadsIsAtLeastOne) {
  EXPECT_GE(NumThreads(), 1);
}

TEST(ParTest, SetNumThreadsOverridesAndRestores) {
  const int64_t before = ConfiguredNumThreads();
  SetNumThreads(3);
  EXPECT_EQ(NumThreads(), 3);
  EXPECT_EQ(ConfiguredNumThreads(), 3);
  SetNumThreads(0);  // back to automatic
  EXPECT_EQ(ConfiguredNumThreads(), 0);
  SetNumThreads(before);
}

TEST(ParTest, ScopedNumThreadsRestoresOnExit) {
  const int64_t before = ConfiguredNumThreads();
  {
    ScopedNumThreads scoped(5);
    EXPECT_EQ(NumThreads(), 5);
    {
      ScopedNumThreads inner(2);
      EXPECT_EQ(NumThreads(), 2);
    }
    EXPECT_EQ(NumThreads(), 5);
  }
  EXPECT_EQ(ConfiguredNumThreads(), before);
}

TEST(ParTest, ScopedNumThreadsZeroIsNoOp) {
  ScopedNumThreads outer(4);
  {
    ScopedNumThreads noop(0);
    EXPECT_EQ(NumThreads(), 4);
  }
  EXPECT_EQ(NumThreads(), 4);
}

TEST(ParTest, ParallelForCoversRangeExactlyOnce) {
  for (int64_t threads : {1, 2, 8}) {
    ScopedNumThreads scoped(threads);
    for (int64_t n : {0, 1, 7, 63, 1000}) {
      std::vector<std::atomic<int>> hits(static_cast<size_t>(n));
      for (auto& h : hits) h.store(0);
      ParallelFor(0, n, 4, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          hits[static_cast<size_t>(i)].fetch_add(1);
        }
      });
      for (int64_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1)
            << "threads=" << threads << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(ParTest, ParallelForChunksAreContiguousAndOrderedWithinChunk) {
  ScopedNumThreads scoped(8);
  const int64_t n = 500;
  std::vector<int64_t> seen_lo, seen_hi;
  std::mutex mu;
  ParallelFor(0, n, 16, [&](int64_t lo, int64_t hi) {
    ASSERT_LT(lo, hi);
    std::lock_guard<std::mutex> lock(mu);
    seen_lo.push_back(lo);
    seen_hi.push_back(hi);
  });
  // The chunks must tile [0, n) exactly.
  std::vector<std::pair<int64_t, int64_t>> chunks;
  for (size_t i = 0; i < seen_lo.size(); ++i) {
    chunks.emplace_back(seen_lo[i], seen_hi[i]);
  }
  std::sort(chunks.begin(), chunks.end());
  int64_t cursor = 0;
  for (const auto& [lo, hi] : chunks) {
    EXPECT_EQ(lo, cursor);
    cursor = hi;
  }
  EXPECT_EQ(cursor, n);
}

TEST(ParTest, SingleThreadRunsInlineOnCallingThread) {
  ScopedNumThreads scoped(1);
  const std::thread::id caller = std::this_thread::get_id();
  int64_t calls = 0;
  ParallelFor(0, 100, 1, [&](int64_t lo, int64_t hi) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    calls += hi - lo;
  });
  EXPECT_EQ(calls, 100);
}

TEST(ParTest, NestedParallelForRunsInline) {
  ScopedNumThreads scoped(4);
  EXPECT_FALSE(InParallelRegion());
  std::atomic<int64_t> inner_total{0};
  ParallelFor(0, 8, 1, [&](int64_t lo, int64_t hi) {
    EXPECT_TRUE(InParallelRegion());
    for (int64_t i = lo; i < hi; ++i) {
      const std::thread::id outer_thread = std::this_thread::get_id();
      // The nested call must not fan out again: same thread, still inside.
      ParallelFor(0, 10, 1, [&](int64_t ilo, int64_t ihi) {
        EXPECT_EQ(std::this_thread::get_id(), outer_thread);
        EXPECT_TRUE(InParallelRegion());
        inner_total.fetch_add(ihi - ilo);
      });
    }
  });
  EXPECT_FALSE(InParallelRegion());
  EXPECT_EQ(inner_total.load(), 8 * 10);
}

TEST(ParTest, MaxThreadsArgumentCapsFanout) {
  ScopedNumThreads scoped(8);
  const std::thread::id caller = std::this_thread::get_id();
  ParallelFor(
      0, 64, 1,
      [&](int64_t, int64_t) { EXPECT_EQ(std::this_thread::get_id(), caller); },
      /*max_threads=*/1);
}

TEST(ParTest, ExceptionPropagatesAndPoolStaysUsable) {
  ScopedNumThreads scoped(4);
  EXPECT_THROW(
      ParallelFor(0, 100, 1,
                  [&](int64_t lo, int64_t) {
                    if (lo >= 40) throw std::runtime_error("chunk failed");
                  }),
      std::runtime_error);
  // The pool must survive the failed job and run subsequent work.
  std::atomic<int64_t> total{0};
  ParallelFor(0, 100, 1, [&](int64_t lo, int64_t hi) {
    total.fetch_add(hi - lo);
  });
  EXPECT_EQ(total.load(), 100);
}

TEST(ParTest, PoolStartStop) {
  // A locally scoped pool starts workers on demand and joins them cleanly
  // in its destructor (no leaks, no deadlock).
  for (int round = 0; round < 3; ++round) {
    Pool pool(2);
    EXPECT_EQ(pool.num_workers(), 2);
    std::atomic<int64_t> ran{0};
    const std::function<void(int64_t)> fn = [&](int64_t) {
      ran.fetch_add(1);
    };
    pool.Run(17, fn);
    EXPECT_EQ(ran.load(), 17);
    pool.EnsureWorkers(4);
    EXPECT_EQ(pool.num_workers(), 4);
    ran.store(0);
    pool.Run(33, fn);
    EXPECT_EQ(ran.load(), 33);
  }
}

TEST(ParTest, ParallelReduceMatchesSerialForAnyThreadCount) {
  std::vector<float> values(1000);
  Rng rng(42);
  for (float& v : values) v = rng.Normal(0.0f, 10.0f);
  const auto map = [&](int64_t lo, int64_t hi) {
    float m = -1e30f;
    for (int64_t i = lo; i < hi; ++i) m = std::max(m, values[i]);
    return m;
  };
  const auto combine = [](float a, float b) { return std::max(a, b); };
  const float expected = map(0, 1000);
  for (int64_t threads : {1, 2, 8}) {
    ScopedNumThreads scoped(threads);
    for (int64_t grain : {1, 7, 64, 2000}) {
      EXPECT_EQ(ParallelReduce<float>(0, 1000, grain, -1e30f, map, combine),
                expected)
          << "threads=" << threads << " grain=" << grain;
    }
  }
}

TEST(ParTest, ParallelReduceEmptyRangeReturnsIdentity) {
  const auto map = [](int64_t, int64_t) { return 1.0f; };
  const auto combine = [](float a, float b) { return a + b; };
  EXPECT_EQ(ParallelReduce<float>(5, 5, 8, -7.0f, map, combine), -7.0f);
}

// --- Tensor-kernel determinism --------------------------------------------
//
// For every parallelized kernel: run with threads=1 (the exact serial
// fallback), then with threads in {2, 8}, and require bitwise-identical
// output buffers.

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  return std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.size()) * sizeof(float)) == 0;
}

// Runs `compute` at threads=1 and at threads in {2, 8} and checks all
// results agree bit for bit.
void ExpectDeterministic(const std::function<Tensor()>& compute,
                         const std::string& what) {
  Tensor serial;
  {
    ScopedNumThreads scoped(1);
    serial = compute();
  }
  for (int64_t threads : {2, 8}) {
    ScopedNumThreads scoped(threads);
    Tensor threaded = compute();
    EXPECT_TRUE(BitwiseEqual(serial, threaded))
        << what << " differs at threads=" << threads;
  }
}

const int64_t kSizes[] = {1, 7, 63, 1000};

TEST(ParDeterminismTest, ElementwiseBinarySameShape) {
  for (int64_t n : kSizes) {
    Rng rng(n);
    Tensor a = Tensor::Normal({n}, 0.0f, 1.0f, &rng);
    Tensor b = Tensor::Normal({n}, 0.0f, 1.0f, &rng);
    ExpectDeterministic([&] { return Add(a, b); }, "Add n=" + std::to_string(n));
    ExpectDeterministic([&] { return Mul(a, b); }, "Mul n=" + std::to_string(n));
    ExpectDeterministic([&] { return Sub(a, b); }, "Sub n=" + std::to_string(n));
  }
}

TEST(ParDeterminismTest, ElementwiseBinarySuffixBroadcast) {
  for (int64_t n : kSizes) {
    Rng rng(n + 100);
    Tensor a = Tensor::Normal({n, 6}, 0.0f, 1.0f, &rng);
    Tensor b = Tensor::Normal({6}, 0.0f, 1.0f, &rng);
    ExpectDeterministic([&] { return Add(a, b); },
                        "Add suffix n=" + std::to_string(n));
    ExpectDeterministic([&] { return Mul(a, b); },
                        "Mul suffix n=" + std::to_string(n));
  }
}

TEST(ParDeterminismTest, ElementwiseBinaryGeneralBroadcast) {
  for (int64_t n : kSizes) {
    Rng rng(n + 200);
    // [n, 1, 4] * [1, 3, 4] exercises the odometer path.
    Tensor a = Tensor::Normal({n, 1, 4}, 0.0f, 1.0f, &rng);
    Tensor b = Tensor::Normal({1, 3, 4}, 0.0f, 1.0f, &rng);
    ExpectDeterministic([&] { return Mul(a, b); },
                        "Mul broadcast n=" + std::to_string(n));
    // Middle-axis broadcast: [n, 1] + [n, 5] style via [n,1,5]+[n,4,1].
    Tensor c = Tensor::Normal({n, 1, 5}, 0.0f, 1.0f, &rng);
    Tensor d = Tensor::Normal({n, 4, 1}, 0.0f, 1.0f, &rng);
    ExpectDeterministic([&] { return Add(c, d); },
                        "Add broadcast n=" + std::to_string(n));
  }
}

TEST(ParDeterminismTest, ElementwiseUnary) {
  for (int64_t n : kSizes) {
    Rng rng(n + 300);
    Tensor a = Tensor::Normal({n}, 0.0f, 2.0f, &rng);
    ExpectDeterministic([&] { return Relu(a); },
                        "Relu n=" + std::to_string(n));
    ExpectDeterministic([&] { return Exp(a); }, "Exp n=" + std::to_string(n));
    ExpectDeterministic([&] { return Tanh(a); },
                        "Tanh n=" + std::to_string(n));
  }
}

TEST(ParDeterminismTest, MatMul2d) {
  for (int64_t n : kSizes) {
    Rng rng(n + 400);
    Tensor a = Tensor::Normal({n, 9}, 0.0f, 1.0f, &rng);
    Tensor b = Tensor::Normal({9, 5}, 0.0f, 1.0f, &rng);
    ExpectDeterministic([&] { return MatMul(a, b); },
                        "MatMul2d m=" + std::to_string(n));
  }
}

TEST(ParDeterminismTest, MatMulBatched) {
  for (int64_t batch : kSizes) {
    Rng rng(batch + 500);
    Tensor a = Tensor::Normal({batch, 4, 6}, 0.0f, 1.0f, &rng);
    Tensor b3 = Tensor::Normal({batch, 6, 3}, 0.0f, 1.0f, &rng);
    Tensor b2 = Tensor::Normal({6, 3}, 0.0f, 1.0f, &rng);
    ExpectDeterministic([&] { return MatMul(a, b3); },
                        "MatMul3d3d batch=" + std::to_string(batch));
    ExpectDeterministic([&] { return MatMul(a, b2); },
                        "MatMul3d2d batch=" + std::to_string(batch));
  }
}

TEST(ParDeterminismTest, TransposeLast2) {
  for (int64_t n : kSizes) {
    Rng rng(n + 600);
    Tensor a = Tensor::Normal({n, 5, 3}, 0.0f, 1.0f, &rng);
    ExpectDeterministic([&] { return TransposeLast2(a); },
                        "TransposeLast2 n=" + std::to_string(n));
  }
}

TEST(ParDeterminismTest, SoftmaxAxes) {
  for (int64_t n : kSizes) {
    Rng rng(n + 700);
    Tensor a = Tensor::Normal({n, 11}, 0.0f, 3.0f, &rng);
    ExpectDeterministic([&] { return Softmax(a, 1); },
                        "Softmax last n=" + std::to_string(n));
    ExpectDeterministic([&] { return Softmax(a, 0); },
                        "Softmax first n=" + std::to_string(n));
  }
}

TEST(ParDeterminismTest, AxisReductions) {
  for (int64_t n : kSizes) {
    Rng rng(n + 800);
    Tensor a = Tensor::Normal({n, 13}, 0.0f, 1.0f, &rng);
    ExpectDeterministic([&] { return Sum(a, 1); },
                        "Sum axis1 n=" + std::to_string(n));
    ExpectDeterministic([&] { return Sum(a, 0); },
                        "Sum axis0 n=" + std::to_string(n));
    ExpectDeterministic([&] { return Mean(a, 1); },
                        "Mean axis1 n=" + std::to_string(n));
    ExpectDeterministic([&] { return Max(a, 1); },
                        "Max axis1 n=" + std::to_string(n));
    ExpectDeterministic([&] { return Max(a, 0); },
                        "Max axis0 n=" + std::to_string(n));
  }
}

TEST(ParDeterminismTest, WholeTensorReductions) {
  for (int64_t n : kSizes) {
    Rng rng(n + 900);
    Tensor a = Tensor::Normal({n, 17}, 0.0f, 1.0f, &rng);
    Tensor b = Tensor::Normal({n, 17}, 0.0f, 1.0f, &rng);
    float max1, sum1;
    float diff1;
    {
      ScopedNumThreads scoped(1);
      max1 = MaxAll(a);
      sum1 = SumAll(a);
      diff1 = MaxAbsDiff(a, b);
    }
    for (int64_t threads : {2, 8}) {
      ScopedNumThreads scoped(threads);
      EXPECT_EQ(MaxAll(a), max1) << "n=" << n << " threads=" << threads;
      EXPECT_EQ(SumAll(a), sum1) << "n=" << n << " threads=" << threads;
      EXPECT_EQ(MaxAbsDiff(a, b), diff1)
          << "n=" << n << " threads=" << threads;
      EXPECT_TRUE(AllClose(a, a, 0.0f, 0.0f));
      EXPECT_FALSE(AllClose(a, b, 1e-8f, 1e-8f));
    }
  }
}

}  // namespace
}  // namespace par
}  // namespace elda
