#include <cmath>
#include <fstream>
#include <sstream>

#include "data/physionet_io.h"
#include "gtest/gtest.h"
#include "synth/simulator.h"

namespace elda {
namespace data {
namespace {

const std::vector<std::string> kFeatures = {"HR", "Glucose", "Lactate"};

TEST(PhysioNetRecordTest, ParsesTimeStampedRows) {
  std::istringstream in(
      "Time,Parameter,Value\n"
      "00:00,RecordID,132539\n"
      "00:00,Age,54\n"
      "00:07,HR,73\n"
      "01:22,Glucose,185\n"
      "01:40,Glucose,190\n"
      "05:30,Lactate,2.4\n");
  EmrSample sample;
  std::string error;
  ASSERT_TRUE(ParsePhysioNetRecord(in, kFeatures, 48, &sample, &error))
      << error;
  EXPECT_TRUE(sample.is_observed(0, 0));
  EXPECT_FLOAT_EQ(sample.value(0, 0), 73.0f);
  // Two glucose values in hour 1: the last wins.
  EXPECT_FLOAT_EQ(sample.value(1, 1), 190.0f);
  EXPECT_FLOAT_EQ(sample.value(5, 2), 2.4f);
  // Unlisted parameters (RecordID, Age) are ignored.
  EXPECT_EQ(sample.NumRecords(), 3);
}

TEST(PhysioNetRecordTest, SkipsNotMeasuredSentinelAndLateRows) {
  std::istringstream in(
      "Time,Parameter,Value\n"
      "02:00,HR,-1\n"      // PhysioNet "not measured"
      "50:10,HR,80\n"      // beyond the 48 h window
      "03:00,HR,91\n");
  EmrSample sample;
  ASSERT_TRUE(ParsePhysioNetRecord(in, kFeatures, 48, &sample));
  EXPECT_EQ(sample.NumRecords(), 1);
  EXPECT_FLOAT_EQ(sample.value(3, 0), 91.0f);
}

TEST(PhysioNetRecordTest, RejectsMalformedInput) {
  std::string error;
  EmrSample sample;
  {
    std::istringstream in("no header here\n");
    EXPECT_FALSE(ParsePhysioNetRecord(in, kFeatures, 48, &sample, &error));
    EXPECT_NE(error.find("header"), std::string::npos);
  }
  {
    std::istringstream in("Time,Parameter,Value\nbadline\n");
    EXPECT_FALSE(ParsePhysioNetRecord(in, kFeatures, 48, &sample, &error));
  }
  {
    std::istringstream in("Time,Parameter,Value\nxx:00,HR,70\n");
    EXPECT_FALSE(ParsePhysioNetRecord(in, kFeatures, 48, &sample, &error));
    EXPECT_NE(error.find("bad time"), std::string::npos);
  }
  {
    std::istringstream in("Time,Parameter,Value\n01:00,HR,abc\n");
    EXPECT_FALSE(ParsePhysioNetRecord(in, kFeatures, 48, &sample, &error));
    EXPECT_NE(error.find("bad value"), std::string::npos);
  }
}

TEST(PhysioNetOutcomesTest, ParsesOutcomeTable) {
  std::istringstream in(
      "RecordID,SAPS-I,SOFA,Length_of_stay,Survival,In-hospital_death\n"
      "132539,6,1,5,-1,0\n"
      "132540,16,8,19,-1,1\n");
  std::vector<PhysioNetOutcome> outcomes;
  std::string error;
  ASSERT_TRUE(ParsePhysioNetOutcomes(in, &outcomes, &error)) << error;
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].record_id, 132539);
  EXPECT_FLOAT_EQ(outcomes[0].length_of_stay_days, 5.0f);
  EXPECT_FLOAT_EQ(outcomes[0].in_hospital_death, 0.0f);
  EXPECT_FLOAT_EQ(outcomes[1].in_hospital_death, 1.0f);
}

TEST(PhysioNetOutcomesTest, RejectsMissingHeader) {
  std::istringstream in("132539,6,1,5,-1,0\n");
  std::vector<PhysioNetOutcome> outcomes;
  std::string error;
  EXPECT_FALSE(ParsePhysioNetOutcomes(in, &outcomes, &error));
}

TEST(CohortCsvTest, RoundTripPreservesEverything) {
  synth::CohortConfig config = synth::SynthPhysioNet2012();
  config.num_admissions = 25;
  EmrDataset original = synth::GenerateCohort(config);
  const std::string path = testing::TempDir() + "/cohort.csv";
  std::string error;
  ASSERT_TRUE(ExportCohortCsv(original, path, &error)) << error;

  EmrDataset loaded;
  ASSERT_TRUE(ImportCohortCsv(path, original.feature_names(), 48, &loaded,
                              &error))
      << error;
  ASSERT_EQ(loaded.size(), original.size());
  for (int64_t i = 0; i < original.size(); ++i) {
    const EmrSample& a = original.sample(i);
    const EmrSample& b = loaded.sample(i);
    EXPECT_EQ(a.mortality_label, b.mortality_label) << i;
    EXPECT_EQ(a.los_gt7_label, b.los_gt7_label) << i;
    EXPECT_EQ(a.condition, b.condition) << i;
    EXPECT_EQ(a.observed, b.observed) << i;
    for (int64_t t = 0; t < a.num_steps; ++t) {
      for (int64_t c = 0; c < a.num_features; ++c) {
        if (!a.is_observed(t, c)) continue;
        EXPECT_NEAR(a.value(t, c), b.value(t, c),
                    1e-4f + 1e-5f * std::fabs(a.value(t, c)));
      }
    }
  }
}

TEST(CohortCsvTest, ImportRejectsUnknownFeature) {
  const std::string path = testing::TempDir() + "/bad_cohort.csv";
  std::ofstream(path) << "#labels,0,0,0,-1\n"
                         "patient,hour,feature,value\n"
                         "0,0,NotAFeature,1.0\n";
  EmrDataset loaded;
  std::string error;
  EXPECT_FALSE(ImportCohortCsv(path, kFeatures, 48, &loaded, &error));
  EXPECT_NE(error.find("unknown feature"), std::string::npos);
}

TEST(CohortCsvTest, ImportRejectsOutOfRangeHour) {
  const std::string path = testing::TempDir() + "/bad_hour.csv";
  std::ofstream(path) << "patient,hour,feature,value\n"
                         "0,99,HR,1.0\n";
  EmrDataset loaded;
  std::string error;
  EXPECT_FALSE(ImportCohortCsv(path, kFeatures, 48, &loaded, &error));
  EXPECT_NE(error.find("out of range"), std::string::npos);
}

TEST(CohortCsvTest, MissingFileFails) {
  EmrDataset loaded;
  std::string error;
  EXPECT_FALSE(ImportCohortCsv("/nonexistent/x.csv", kFeatures, 48, &loaded,
                               &error));
}

}  // namespace
}  // namespace data
}  // namespace elda
