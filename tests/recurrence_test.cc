// The time-major recurrence engine's contract: sweeps are bitwise identical
// to the per-step op-by-op composition they replaced — for every shape,
// thread count, grad mode, and sweep direction — while allocating a
// fraction of the tape. The per-step references below are verbatim
// re-creations of the pre-sweep GruCell/Lstm forward code, built from the
// same parameters through the cells' weight accessors.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "baselines/baselines.h"
#include "baselines/common.h"
#include "data/pipeline.h"
#include "gtest/gtest.h"
#include "nn/recurrent_sweep.h"
#include "nn/serialize.h"
#include "par/par.h"
#include "tensor/tensor_ops.h"
#include "train/trainer.h"

namespace elda {
namespace {

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(pa[i], pb[i]) << "element " << i;
  }
}

// -- Pre-sweep reference implementations ------------------------------------
//
// These reproduce, op for op, the recurrence code the sweep engine replaced:
// per-step input slices, a per-step input GEMM, gate math composed from
// Slice/Add/Mul/Sigmoid/Tanh nodes, and Reshape+Concat output assembly.

ag::Variable RefGruStep(const nn::GruCell& cell, const ag::Variable& x,
                        const ag::Variable& h) {
  const int64_t hs = cell.hidden_size();
  ag::Variable xw = ag::Add(ag::MatMul(x, cell.w_ih()), cell.bias());
  ag::Variable hu = ag::MatMul(h, cell.w_hh());
  ag::Variable r = ag::Sigmoid(
      ag::Add(ag::Slice(xw, 1, 0, hs), ag::Slice(hu, 1, 0, hs)));
  ag::Variable z = ag::Sigmoid(
      ag::Add(ag::Slice(xw, 1, hs, hs), ag::Slice(hu, 1, hs, hs)));
  ag::Variable n = ag::Tanh(ag::Add(
      ag::Slice(xw, 1, 2 * hs, hs), ag::Mul(r, ag::Slice(hu, 1, 2 * hs, hs))));
  ag::Variable one_minus_z =
      ag::Sub(ag::Constant(Tensor::Ones(z.value().shape())), z);
  return ag::Add(ag::Mul(one_minus_z, n), ag::Mul(z, h));
}

std::vector<ag::Variable> RefGruSteps(const nn::GruCell& cell,
                                      const ag::Variable& x) {
  const int64_t batch = x.value().shape(0);
  const int64_t steps = x.value().shape(1);
  const int64_t input = x.value().shape(2);
  ag::Variable h = ag::Constant(Tensor::Zeros({batch, cell.hidden_size()}));
  std::vector<ag::Variable> outputs;
  outputs.reserve(steps);
  for (int64_t t = 0; t < steps; ++t) {
    ag::Variable xt = ag::Reshape(ag::Slice(x, 1, t, 1), {batch, input});
    h = RefGruStep(cell, xt, h);
    outputs.push_back(h);
  }
  return outputs;
}

ag::Variable RefGruForward(const nn::GruCell& cell, const ag::Variable& x) {
  std::vector<ag::Variable> steps = RefGruSteps(cell, x);
  const int64_t batch = x.value().shape(0);
  std::vector<ag::Variable> expanded;
  expanded.reserve(steps.size());
  for (const ag::Variable& h : steps) {
    expanded.push_back(ag::Reshape(h, {batch, 1, cell.hidden_size()}));
  }
  return ag::Concat(expanded, 1);
}

ag::Variable RefLstmForward(const nn::LstmCell& cell, const ag::Variable& x) {
  const int64_t batch = x.value().shape(0);
  const int64_t steps = x.value().shape(1);
  const int64_t input = x.value().shape(2);
  const int64_t hs = cell.hidden_size();
  ag::Variable h = ag::Constant(Tensor::Zeros({batch, hs}));
  ag::Variable c = ag::Constant(Tensor::Zeros({batch, hs}));
  std::vector<ag::Variable> outputs;
  outputs.reserve(steps);
  for (int64_t t = 0; t < steps; ++t) {
    ag::Variable xt = ag::Reshape(ag::Slice(x, 1, t, 1), {batch, input});
    ag::Variable gates = ag::Add(
        ag::Add(ag::MatMul(xt, cell.w_ih()), ag::MatMul(h, cell.w_hh())),
        cell.bias());
    ag::Variable i = ag::Sigmoid(ag::Slice(gates, 1, 0, hs));
    ag::Variable f = ag::Sigmoid(ag::Slice(gates, 1, hs, hs));
    ag::Variable g = ag::Tanh(ag::Slice(gates, 1, 2 * hs, hs));
    ag::Variable o = ag::Sigmoid(ag::Slice(gates, 1, 3 * hs, hs));
    c = ag::Add(ag::Mul(f, c), ag::Mul(i, g));
    h = ag::Mul(o, ag::Tanh(c));
    outputs.push_back(ag::Reshape(h, {batch, 1, hs}));
  }
  return ag::Concat(outputs, 1);
}

// The old ReverseTime: T length-1 slices concatenated in reverse order.
ag::Variable RefReverseTime(const ag::Variable& x) {
  const int64_t steps = x.value().shape(1);
  std::vector<ag::Variable> slices;
  slices.reserve(steps);
  for (int64_t t = steps - 1; t >= 0; --t) {
    slices.push_back(ag::Slice(x, 1, t, 1));
  }
  return ag::Concat(slices, 1);
}

struct Shape3 {
  int64_t batch, steps, input, hidden;
};

const Shape3 kShapes[] = {
    {1, 1, 1, 1}, {2, 6, 3, 4}, {3, 7, 5, 5}, {8, 12, 2, 6}};

// -- Bitwise sweep-vs-reference equivalence ----------------------------------

TEST(RecurrenceTest, GruSweepBitwiseMatchesPerStepReference) {
  for (const Shape3& s : kShapes) {
    SCOPED_TRACE(::testing::Message() << "B=" << s.batch << " T=" << s.steps
                                      << " C=" << s.input << " H=" << s.hidden);
    Rng rng(11);
    nn::GruCell cell(s.input, s.hidden, &rng);
    nn::Gru gru(s.input, s.hidden, &rng);
    Rng data_rng(12);
    ag::Variable x = ag::Constant(
        Tensor::Normal({s.batch, s.steps, s.input}, 0.0f, 1.0f, &data_rng));
    const Tensor reference = RefGruForward(cell, x).value().Clone();
    const std::vector<ag::Variable> ref_steps = RefGruSteps(cell, x);
    for (int64_t threads : {1, 2, 8}) {
      SCOPED_TRACE(::testing::Message() << "threads=" << threads);
      par::ScopedNumThreads scoped(threads);
      // Taped sweep.
      nn::SweepResult sweep = nn::GruSweep(cell, x);
      ExpectBitwiseEqual(sweep.Stacked().value(), reference);
      ASSERT_EQ(sweep.steps.size(), ref_steps.size());
      for (size_t t = 0; t < ref_steps.size(); ++t) {
        ExpectBitwiseEqual(sweep.steps[t].value(), ref_steps[t].value());
      }
      // Graph-free sweep: same values, zero tape.
      {
        ag::NoGradScope no_grad;
        const int64_t before = ag::TapeNodesAllocated();
        ExpectBitwiseEqual(nn::GruSweep(cell, x).Stacked().value(),
                           reference);
        EXPECT_EQ(ag::TapeNodesAllocated(), before);
      }
    }
  }
}

TEST(RecurrenceTest, LstmSweepBitwiseMatchesPerStepReference) {
  for (const Shape3& s : kShapes) {
    SCOPED_TRACE(::testing::Message() << "B=" << s.batch << " T=" << s.steps
                                      << " C=" << s.input << " H=" << s.hidden);
    Rng rng(21);
    nn::LstmCell cell(s.input, s.hidden, &rng);
    Rng data_rng(22);
    ag::Variable x = ag::Constant(
        Tensor::Normal({s.batch, s.steps, s.input}, 0.0f, 1.0f, &data_rng));
    const Tensor reference = RefLstmForward(cell, x).value().Clone();
    for (int64_t threads : {1, 2, 8}) {
      SCOPED_TRACE(::testing::Message() << "threads=" << threads);
      par::ScopedNumThreads scoped(threads);
      ExpectBitwiseEqual(nn::LstmSweep(cell, x).Stacked().value(), reference);
      {
        ag::NoGradScope no_grad;
        const int64_t before = ag::TapeNodesAllocated();
        ExpectBitwiseEqual(nn::LstmSweep(cell, x).Stacked().value(),
                           reference);
        EXPECT_EQ(ag::TapeNodesAllocated(), before);
      }
    }
  }
}

TEST(RecurrenceTest, ReversedSweepMatchesReverseTimeComposition) {
  // A reversed sweep must equal the old ReverseTime -> forward recurrence ->
  // ReverseTime sandwich, without either copy.
  Rng rng(31);
  nn::GruCell cell(3, 5, &rng);
  Rng data_rng(32);
  ag::Variable x =
      ag::Constant(Tensor::Normal({4, 9, 3}, 0.0f, 1.0f, &data_rng));
  const Tensor reference =
      RefReverseTime(RefGruForward(cell, RefReverseTime(x))).value().Clone();
  nn::SweepOptions reversed;
  reversed.reversed = true;
  nn::SweepResult sweep = nn::GruSweep(cell, x, reversed);
  ExpectBitwiseEqual(sweep.Stacked().value(), reference);
  // last() is the state computed last: chronological index 0 when reversed.
  ExpectBitwiseEqual(sweep.last().value(), sweep.steps.front().value());
  // ReverseTime itself is now one ReverseAxis node with the same values.
  ExpectBitwiseEqual(baselines::ReverseTime(x).value(),
                     RefReverseTime(x).value());
}

// -- Ragged (valid-prefix) sweeps --------------------------------------------
//
// SweepOptions::lengths freezes row b at steps t >= lengths[b]. The contract
// is bitwise: each kept prefix must equal a solo sweep of that row alone at
// its true length, frozen steps must copy the last computed state (forward)
// or hold the initial state (reversed), and uniform lengths must collapse to
// the dense fixed-T path with zero extra tape nodes.

Tensor RowPrefix(const Tensor& x, int64_t row, int64_t len) {
  const int64_t steps = x.shape(1);
  const int64_t input = x.shape(2);
  Tensor out = Tensor::Zeros({1, len, input});
  const float* src = x.data() + row * steps * input;
  std::copy(src, src + len * input, out.data());
  return out;
}

void ExpectRowBitwiseEqual(const Tensor& full, int64_t row,
                           const Tensor& solo) {
  const int64_t width = full.shape(1);
  ASSERT_EQ(solo.size(), width);
  const float* pa = full.data() + row * width;
  const float* pb = solo.data();
  for (int64_t i = 0; i < width; ++i) {
    ASSERT_EQ(pa[i], pb[i]) << "column " << i;
  }
}

TEST(RecurrenceTest, RaggedSweepRowsBitwiseMatchSoloRuns) {
  const int64_t batch = 5, steps = 9, input = 3;
  const std::vector<int64_t> lengths = {9, 3, 7, 1, 9};
  Rng rng(101);
  nn::GruCell gru_cell(input, 6, &rng);
  nn::LstmCell lstm_cell(input, 6, &rng);
  Rng data_rng(102);
  ag::Variable x = ag::Constant(
      Tensor::Normal({batch, steps, input}, 0.0f, 1.0f, &data_rng));
  nn::SweepOptions ragged;
  ragged.lengths = &lengths;
  for (const bool use_lstm : {false, true}) {
    SCOPED_TRACE(use_lstm ? "lstm" : "gru");
    const nn::SweepResult sweep =
        use_lstm ? nn::LstmSweep(lstm_cell, x, ragged)
                 : nn::GruSweep(gru_cell, x, ragged);
    ASSERT_EQ(sweep.steps.size(), static_cast<size_t>(steps));
    for (int64_t b = 0; b < batch; ++b) {
      SCOPED_TRACE(::testing::Message() << "row " << b);
      ag::Variable solo_x =
          ag::Constant(RowPrefix(x.value(), b, lengths[b]));
      const nn::SweepResult solo = use_lstm
                                       ? nn::LstmSweep(lstm_cell, solo_x)
                                       : nn::GruSweep(gru_cell, solo_x);
      // The kept prefix runs the normal cell step: bitwise equal to the
      // solo run at every chronological step.
      for (int64_t t = 0; t < lengths[b]; ++t) {
        ExpectRowBitwiseEqual(sweep.steps[t].value(), b,
                              solo.steps[t].value());
      }
      // Frozen steps copy the state computed at the row's final valid step,
      // so the batch-final state is the solo run's final state.
      for (int64_t t = lengths[b]; t < steps; ++t) {
        ExpectRowBitwiseEqual(sweep.steps[t].value(), b,
                              solo.last().value());
      }
      ExpectRowBitwiseEqual(sweep.last().value(), b, solo.last().value());
    }
  }
}

TEST(RecurrenceTest, RaggedReversedSweepMatchesSoloReversedRuns) {
  const int64_t batch = 4, steps = 8, input = 3, hidden = 5;
  const std::vector<int64_t> lengths = {8, 2, 5, 1};
  Rng rng(111);
  nn::GruCell cell(input, hidden, &rng);
  Rng data_rng(112);
  ag::Variable x = ag::Constant(
      Tensor::Normal({batch, steps, input}, 0.0f, 1.0f, &data_rng));
  nn::SweepOptions ragged_reversed;
  ragged_reversed.reversed = true;
  ragged_reversed.lengths = &lengths;
  const nn::SweepResult sweep = nn::GruSweep(cell, x, ragged_reversed);
  const Tensor zero_state = Tensor::Zeros({1, hidden});
  for (int64_t b = 0; b < batch; ++b) {
    SCOPED_TRACE(::testing::Message() << "row " << b);
    ag::Variable solo_x = ag::Constant(RowPrefix(x.value(), b, lengths[b]));
    nn::SweepOptions solo_reversed;
    solo_reversed.reversed = true;
    const nn::SweepResult solo = nn::GruSweep(cell, solo_x, solo_reversed);
    // A reversed sweep walks t = T-1 .. 0; rows past their length hold the
    // initial state until the sweep enters their valid prefix.
    for (int64_t t = lengths[b]; t < steps; ++t) {
      ExpectRowBitwiseEqual(sweep.steps[t].value(), b, zero_state);
    }
    for (int64_t t = 0; t < lengths[b]; ++t) {
      ExpectRowBitwiseEqual(sweep.steps[t].value(), b,
                            solo.steps[t].value());
    }
    ExpectRowBitwiseEqual(sweep.last().value(), b, solo.last().value());
  }
}

TEST(RecurrenceTest, UniformLengthsTakeTheDenseFixedPathBitwise) {
  Rng rng(121);
  nn::GruCell cell(3, 6, &rng);
  Rng data_rng(122);
  ag::Variable x =
      ag::Constant(Tensor::Normal({4, 7, 3}, 0.0f, 1.0f, &data_rng));
  const std::vector<int64_t> uniform(4, 7);
  nn::SweepOptions ragged;
  ragged.lengths = &uniform;

  const Tensor dense = nn::GruSweep(cell, x).Stacked().value().Clone();
  ExpectBitwiseEqual(nn::GruSweep(cell, x, ragged).Stacked().value(), dense);

  // Uniform lengths must not cost a single extra tape node over the dense
  // sweep (the FreezeRows copies are skipped entirely).
  int64_t before = ag::TapeNodesAllocated();
  { ag::Variable keep = nn::GruSweep(cell, x).Stacked(); }
  const int64_t dense_nodes = ag::TapeNodesAllocated() - before;
  before = ag::TapeNodesAllocated();
  { ag::Variable keep = nn::GruSweep(cell, x, ragged).Stacked(); }
  const int64_t uniform_nodes = ag::TapeNodesAllocated() - before;
  EXPECT_EQ(uniform_nodes, dense_nodes);
}

TEST(RecurrenceTest, RaggedSweepGradCheck) {
  Rng rng(131);
  nn::GruCell cell(2, 3, &rng);
  Rng data_rng(132);
  ag::Variable x =
      ag::Constant(Tensor::Normal({3, 4, 2}, 0.0f, 1.0f, &data_rng));
  const std::vector<int64_t> lengths = {4, 2, 3};
  nn::SweepOptions ragged;
  ragged.lengths = &lengths;
  std::string error;
  ag::GradCheckOptions options;
  options.max_elements_per_param = 24;
  EXPECT_TRUE(ag::CheckGradients(
      [&] {
        return ag::SumAll(ag::Square(nn::GruSweep(cell, x, ragged).Stacked()));
      },
      cell.Parameters(), options, &error))
      << error;
}

// -- Gradients through the fused path ----------------------------------------

TEST(RecurrenceTest, ReversedSweepGradCheck) {
  Rng rng(41);
  nn::GruCell cell(2, 3, &rng);
  Rng data_rng(42);
  ag::Variable x =
      ag::Constant(Tensor::Normal({2, 4, 2}, 0.0f, 1.0f, &data_rng));
  nn::SweepOptions reversed;
  reversed.reversed = true;
  std::string error;
  ag::GradCheckOptions options;
  options.max_elements_per_param = 24;
  EXPECT_TRUE(ag::CheckGradients(
      [&] {
        return ag::SumAll(
            ag::Square(nn::GruSweep(cell, x, reversed).Stacked()));
      },
      cell.Parameters(), options, &error))
      << error;
}

TEST(RecurrenceTest, GenericSweepWithPerStepStateEditGradCheck) {
  // The GRU-D pattern: a generic sweep whose step decays the carried state
  // before the fused cell step, with the decay factors read through
  // RowsView from a hoisted time-major block.
  Rng rng(51);
  nn::GruCell cell(2, 3, &rng);
  Rng data_rng(52);
  const int64_t batch = 2, steps = 4;
  ag::Variable x = ag::Constant(
      Tensor::Normal({batch, steps, 2}, 0.0f, 1.0f, &data_rng));
  ag::Variable decay(
      Tensor::Normal({batch, steps, 3}, 0.0f, 0.5f, &data_rng),
      /*requires_grad=*/true);
  std::vector<ag::Variable> checked = cell.Parameters();
  checked.push_back(decay);
  std::string error;
  ag::GradCheckOptions options;
  options.max_elements_per_param = 24;
  EXPECT_TRUE(ag::CheckGradients(
      [&] {
        ag::Variable xw = cell.PrecomputeInput(
            ag::Reshape(ag::Transpose01(x), {steps * batch, 2}));
        ag::Variable gamma = ag::Sigmoid(ag::Reshape(
            ag::Transpose01(decay), {steps * batch, 3}));
        ag::Variable h0 = ag::Constant(Tensor::Zeros({batch, 3}));
        nn::SweepResult sweep = nn::Sweep(
            steps, h0,
            [&](int64_t t, const ag::Variable& h) {
              ag::Variable decayed = ag::Mul(
                  ag::RowsView(gamma, t * batch, batch), h);
              return cell.Step(ag::RowsView(xw, t * batch, batch), decayed);
            });
        return ag::SumAll(ag::Square(sweep.Stacked()));
      },
      checked, options, &error))
      << error;
}

TEST(RecurrenceTest, ViewAndPermutationOpsGradCheck) {
  Rng rng(61);
  ag::Variable a(Tensor::Normal({4, 3, 2}, 0.0f, 1.0f, &rng),
                 /*requires_grad=*/true);
  ag::Variable b(Tensor::Normal({2, 5}, 0.0f, 1.0f, &rng),
                 /*requires_grad=*/true);
  std::string error;
  struct Case {
    const char* name;
    std::function<ag::Variable()> f;
  };
  const Case cases[] = {
      {"Transpose01",
       [&] { return ag::SumAll(ag::Square(ag::Transpose01(a))); }},
      {"ReverseAxis",
       [&] { return ag::SumAll(ag::Square(ag::ReverseAxis(a, 1))); }},
      {"RowsView",
       // Two overlapping-free views so the range accumulation covers
       // disjoint blocks plus an untouched remainder.
       [&] {
         return ag::Add(
             ag::SumAll(ag::Square(ag::RowsView(a, 0, 2))),
             ag::SumAll(ag::Square(ag::RowsView(a, 3, 1))));
       }},
      {"StepView",
       [&] {
         return ag::Add(ag::SumAll(ag::Square(ag::StepView(a, 1))),
                        ag::SumAll(ag::Square(ag::StepView(a, 1))));
       }},
      {"Stack0", [&] {
         return ag::SumAll(
             ag::Square(ag::Stack0({b, ag::MulScalar(b, 2.0f), b})));
       }}};
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    EXPECT_TRUE(ag::CheckGradients(c.f, {a, b}, {}, &error)) << error;
  }
}

// -- Whole-registry invariance ------------------------------------------------

std::vector<data::PreparedSample> RandomSamples(int64_t n, int64_t steps,
                                                int64_t features,
                                                uint64_t seed) {
  Rng rng(seed);
  std::vector<data::PreparedSample> prepared;
  prepared.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    data::PreparedSample p;
    p.x = Tensor::Normal({steps, features}, 0.0f, 1.0f, &rng);
    p.mask = Tensor({steps, features});
    for (int64_t j = 0; j < p.mask.size(); ++j) {
      p.mask[j] = rng.Bernoulli(0.6) ? 1.0f : 0.0f;
    }
    p.delta = Tensor({steps, features});
    for (int64_t j = 0; j < p.delta.size(); ++j) {
      p.delta[j] = static_cast<float>(rng.Uniform() * 3.0);
    }
    p.mortality_label = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
    p.los_gt7_label = p.mortality_label;
    prepared.push_back(std::move(p));
  }
  return prepared;
}

std::vector<std::string> AllRegistryNames() {
  std::vector<std::string> names = baselines::AllModelNames();
  names.push_back("ELDA-Net-Fbi*");
  names.push_back("ELDA-Net-Ffm*");
  return names;
}

TEST(RecurrenceTest, RegistryForwardBitwiseAcrossThreadsAndGradModes) {
  const int64_t features = 5;
  const auto prepared = RandomSamples(8, 6, features, 71);
  std::vector<int64_t> indices;
  for (int64_t i = 0; i < 8; ++i) indices.push_back(i);
  const data::Batch batch =
      data::MakeBatch(prepared, indices, data::Task::kMortality);

  for (const std::string& name : AllRegistryNames()) {
    SCOPED_TRACE(name);
    auto model = baselines::MakeModel(name, features, /*seed=*/7);
    const Tensor reference = model->Forward(batch, nullptr).value().Clone();
    for (int64_t threads : {1, 2, 8}) {
      SCOPED_TRACE(::testing::Message() << "threads=" << threads);
      par::ScopedNumThreads scoped(threads);
      ExpectBitwiseEqual(model->Forward(batch, nullptr).value(), reference);
      ag::NoGradScope no_grad;
      ExpectBitwiseEqual(model->Forward(batch, nullptr).value(), reference);
    }
  }
}

TEST(RecurrenceTest, TrainingIsBitwiseIdenticalAcrossThreadCounts) {
  // Two short training runs from the same seed must produce byte-identical
  // parameters at different thread counts: backward through the fused steps
  // is as deterministic as forward.
  const auto prepared = RandomSamples(48, 6, 4, 81);
  data::SplitIndices split;
  for (int64_t i = 0; i < 40; ++i) split.train.push_back(i);
  for (int64_t i = 40; i < 44; ++i) split.val.push_back(i);
  for (int64_t i = 44; i < 48; ++i) split.test.push_back(i);
  train::TrainerConfig config;
  config.max_epochs = 2;
  config.batch_size = 16;
  config.learning_rate = 0.01f;

  std::string params_1thread;
  {
    par::ScopedNumThreads scoped(1);
    auto model = baselines::MakeModel("GRU", 4, /*seed=*/3);
    train::Trainer(config).Train(model.get(), prepared, split,
                                 data::Task::kMortality);
    params_1thread = nn::EncodeParameters(*model);
  }
  {
    par::ScopedNumThreads scoped(4);
    auto model = baselines::MakeModel("GRU", 4, /*seed=*/3);
    train::Trainer(config).Train(model.get(), prepared, split,
                                 data::Task::kMortality);
    EXPECT_EQ(nn::EncodeParameters(*model), params_1thread);
  }
}

// -- Tape budgets --------------------------------------------------------------

TEST(RecurrenceTest, SweepTapeIsAtLeastHalvedVersusPerStepComposition) {
  Rng rng(91);
  nn::GruCell gru_cell(5, 8, &rng);
  nn::LstmCell lstm_cell(5, 8, &rng);
  Rng data_rng(92);
  ag::Variable x =
      ag::Constant(Tensor::Normal({4, 12, 5}, 0.0f, 1.0f, &data_rng));

  int64_t before = ag::TapeNodesAllocated();
  { ag::Variable keep = RefGruForward(gru_cell, x); }
  const int64_t gru_reference = ag::TapeNodesAllocated() - before;

  before = ag::TapeNodesAllocated();
  { ag::Variable keep = nn::GruSweep(gru_cell, x).Stacked(); }
  const int64_t gru_sweep = ag::TapeNodesAllocated() - before;

  before = ag::TapeNodesAllocated();
  { ag::Variable keep = RefLstmForward(lstm_cell, x); }
  const int64_t lstm_reference = ag::TapeNodesAllocated() - before;

  before = ag::TapeNodesAllocated();
  { ag::Variable keep = nn::LstmSweep(lstm_cell, x).Stacked(); }
  const int64_t lstm_sweep = ag::TapeNodesAllocated() - before;

  // The acceptance bar is a 2x reduction; the fused steps actually land far
  // below half (2 nodes per GRU step against ~22).
  EXPECT_LE(gru_sweep * 2, gru_reference)
      << "sweep " << gru_sweep << " vs reference " << gru_reference;
  EXPECT_LE(lstm_sweep * 2, lstm_reference)
      << "sweep " << lstm_sweep << " vs reference " << lstm_reference;
}

TEST(RecurrenceTest, PerModelTapeBudgetsHold) {
  // Pinned ceilings on tape nodes per taped forward (B=8, T=6, C=5). These
  // are regression tripwires: a change that quietly reintroduces per-step
  // graph building blows the budget immediately. Measured values sit
  // 10-25% below each pin.
  const struct {
    const char* name;
    int64_t budget;
  } kBudgets[] = {
      {"LR", 4},             {"FM", 17},
      {"AFM", 29},           {"SAnD", 110},
      {"GRU", 22},           {"RETAIN", 65},
      {"Dipole-l", 62},      {"Dipole-g", 64},
      {"Dipole-c", 68},      {"StageNet", 55},
      {"GRU-D", 60},         {"ConCare", 115},
      {"ELDA-Net-T", 38},    {"ELDA-Net-Fbi", 50},
      {"ELDA-Net-Ffm", 44},  {"ELDA-Net", 65},
      {"ELDA-Net-Fbi*", 52}, {"ELDA-Net-Ffm*", 46},
  };
  const int64_t features = 5;
  const auto prepared = RandomSamples(8, 6, features, 93);
  std::vector<int64_t> indices;
  for (int64_t i = 0; i < 8; ++i) indices.push_back(i);
  const data::Batch batch =
      data::MakeBatch(prepared, indices, data::Task::kMortality);
  std::vector<std::string> covered;
  for (const auto& entry : kBudgets) {
    SCOPED_TRACE(entry.name);
    auto model = baselines::MakeModel(entry.name, features, /*seed=*/7);
    const int64_t before = ag::TapeNodesAllocated();
    { ag::Variable keep = model->Forward(batch, nullptr); }
    const int64_t used = ag::TapeNodesAllocated() - before;
    std::printf("[tape] %-14s %4lld nodes (budget %lld)\n", entry.name,
                static_cast<long long>(used),
                static_cast<long long>(entry.budget));
    EXPECT_LE(used, entry.budget) << "tape nodes per forward: " << used;
    EXPECT_GT(used, 0);
    covered.push_back(entry.name);
  }
  // Every registry model carries a pinned budget.
  for (const std::string& name : AllRegistryNames()) {
    EXPECT_NE(std::find(covered.begin(), covered.end(), name), covered.end())
        << "no tape budget pinned for " << name;
  }
}

}  // namespace
}  // namespace elda
