// Forward reentrancy: with per-call contexts and no mutable model state,
// concurrent inference on one model instance must be race-free (run under
// TSan in the sanitizer suite) and bitwise identical to the serial path.

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "autograd/ops.h"
#include "baselines/baselines.h"
#include "gtest/gtest.h"
#include "train/trainer.h"

namespace elda {
namespace {

std::vector<data::PreparedSample> RandomSamples(int64_t n, int64_t steps,
                                                int64_t features,
                                                uint64_t seed) {
  Rng rng(seed);
  std::vector<data::PreparedSample> prepared;
  prepared.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    data::PreparedSample p;
    p.x = Tensor::Normal({steps, features}, 0.0f, 1.0f, &rng);
    p.mask = Tensor({steps, features});
    for (int64_t j = 0; j < p.mask.size(); ++j) {
      p.mask[j] = rng.Bernoulli(0.6) ? 1.0f : 0.0f;
    }
    p.delta = Tensor({steps, features});
    for (int64_t j = 0; j < p.delta.size(); ++j) {
      p.delta[j] = static_cast<float>(rng.Uniform() * 3.0);
    }
    p.mortality_label = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
    p.los_gt7_label = p.mortality_label;
    prepared.push_back(std::move(p));
  }
  return prepared;
}

std::vector<std::string> AllRegistryNames() {
  std::vector<std::string> names = baselines::AllModelNames();
  names.push_back("ELDA-Net-Fbi*");
  names.push_back("ELDA-Net-Ffm*");
  return names;
}

TEST(ReentrancyTest, ConcurrentPredictMatchesSerialForEveryModel) {
  const int64_t features = 5;
  const auto prepared = RandomSamples(60, 6, features, 19);
  std::vector<int64_t> indices;
  for (int64_t i = 0; i < 60; ++i) indices.push_back(i);

  for (const std::string& name : AllRegistryNames()) {
    SCOPED_TRACE(name);
    auto model = baselines::MakeModel(name, features, /*seed=*/7);

    train::InferenceOptions serial;
    serial.batch_size = 8;
    serial.parallel = false;
    const train::PredictResult base = train::Trainer::Predict(
        model.get(), prepared, indices, data::Task::kMortality, serial);

    train::InferenceOptions parallel;
    parallel.batch_size = 8;
    parallel.parallel = true;
    parallel.num_threads = 4;
    const train::PredictResult got = train::Trainer::Predict(
        model.get(), prepared, indices, data::Task::kMortality, parallel);

    ASSERT_EQ(got.scores.size(), base.scores.size());
    for (size_t i = 0; i < base.scores.size(); ++i) {
      EXPECT_EQ(got.scores[i], base.scores[i]) << "i=" << i;
    }
  }
}

TEST(ReentrancyTest, ConcurrentCapturesMatchSerialSurfaces) {
  // Four threads forward four different batches through one shared model,
  // each into its own sink; every thread must see exactly the surfaces the
  // serial pass produced for its batch.
  const int64_t features = 5;
  const int64_t kThreads = 4;
  const auto prepared = RandomSamples(32, 6, features, 23);

  for (const std::string& name :
       {std::string("ELDA-Net"), std::string("Dipole-c")}) {
    SCOPED_TRACE(name);
    auto model = baselines::MakeModel(name, features, /*seed=*/5);

    std::vector<data::Batch> batches;
    std::vector<Tensor> serial_attention;
    for (int64_t t = 0; t < kThreads; ++t) {
      std::vector<int64_t> chunk;
      for (int64_t i = 0; i < 8; ++i) chunk.push_back(t * 8 + i);
      batches.push_back(
          data::MakeBatch(prepared, chunk, data::Task::kMortality));
      ag::NoGradScope no_grad;
      nn::CaptureSink sink;
      nn::ForwardContext ctx;
      ctx.capture = &sink;
      model->Forward(batches.back(), &ctx);
      serial_attention.push_back(sink.Get("time_attention").Clone());
    }

    std::vector<Tensor> threaded_attention(kThreads);
    std::vector<std::thread> workers;
    for (int64_t t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        ag::NoGradScope no_grad;
        nn::CaptureSink sink;
        nn::ForwardContext ctx;
        ctx.capture = &sink;
        model->Forward(batches[t], &ctx);
        threaded_attention[t] = sink.Get("time_attention").Clone();
      });
    }
    for (std::thread& w : workers) w.join();

    for (int64_t t = 0; t < kThreads; ++t) {
      const Tensor& expected = serial_attention[t];
      const Tensor& got = threaded_attention[t];
      ASSERT_EQ(got.shape(), expected.shape()) << "thread " << t;
      for (int64_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(got[i], expected[i]) << "thread " << t << " i=" << i;
      }
    }
  }
}

}  // namespace
}  // namespace elda
