#include <cstdio>
#include <fstream>
#include <string>

#include "gtest/gtest.h"
#include "nn/gru.h"
#include "nn/linear.h"
#include "nn/serialize.h"
#include "tensor/tensor_ops.h"

namespace elda {
namespace nn {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

template <typename T>
void AppendPod(std::string* out, const T& value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Legacy v1 layout: magic | uint32 1 | uint64 count | per parameter:
// uint32 name_len | name | uint32 rank | int64 dims | float data.
std::string V1Header(uint64_t count) {
  std::string bytes = "ELDA";
  AppendPod(&bytes, static_cast<uint32_t>(1));
  AppendPod(&bytes, count);
  return bytes;
}

// A module with nesting, for name-path coverage.
class SmallNet : public Module {
 public:
  explicit SmallNet(uint64_t seed)
      : rng_(seed), gru_(3, 4, &rng_), head_(4, 1, true, &rng_) {
    RegisterSubmodule("gru", &gru_);
    RegisterSubmodule("head", &head_);
  }
  Rng rng_;
  Gru gru_;
  Linear head_;
};

TEST(SerializeTest, RoundTripRestoresExactValues) {
  SmallNet source(1);
  const std::string path = TempPath("roundtrip.eldaw");
  std::string error;
  ASSERT_TRUE(SaveParameters(source, path, &error)) << error;

  SmallNet target(2);  // different init
  // Confirm they differ before loading.
  bool differs = false;
  auto a = source.NamedParameters();
  auto b = target.NamedParameters();
  for (size_t i = 0; i < a.size(); ++i) {
    if (!AllClose(a[i].second.value(), b[i].second.value())) differs = true;
  }
  ASSERT_TRUE(differs);

  ASSERT_TRUE(LoadParameters(&target, path, &error)) << error;
  b = target.NamedParameters();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first);
    EXPECT_TRUE(AllClose(a[i].second.value(), b[i].second.value()))
        << a[i].first;
  }
}

TEST(SerializeTest, LoadedModelProducesIdenticalOutputs) {
  SmallNet source(3);
  SmallNet target(4);
  const std::string path = TempPath("outputs.eldaw");
  ASSERT_TRUE(SaveParameters(source, path));
  ASSERT_TRUE(LoadParameters(&target, path));
  Rng rng(5);
  ag::Variable x = ag::Constant(Tensor::Normal({2, 6, 3}, 0, 1, &rng));
  Tensor ys = source.gru_.Forward(x).value();
  Tensor yt = target.gru_.Forward(x).value();
  EXPECT_TRUE(AllClose(ys, yt));
}

TEST(SerializeTest, RejectsArchitectureMismatch) {
  SmallNet source(6);
  const std::string path = TempPath("mismatch.eldaw");
  ASSERT_TRUE(SaveParameters(source, path));
  Rng rng(7);
  Linear different(3, 4, true, &rng);  // fewer parameters, other names
  std::string error;
  EXPECT_FALSE(LoadParameters(&different, path, &error));
  EXPECT_FALSE(error.empty());
}

TEST(SerializeTest, RejectsShapeMismatch) {
  Rng rng1(8);
  Linear small(3, 4, true, &rng1);
  const std::string path = TempPath("shape.eldaw");
  ASSERT_TRUE(SaveParameters(small, path));
  Rng rng2(9);
  Linear big(3, 5, true, &rng2);  // same names ("weight", "bias"), new shape
  std::string error;
  EXPECT_FALSE(LoadParameters(&big, path, &error));
  EXPECT_NE(error.find("shape"), std::string::npos);
}

TEST(SerializeTest, RejectsGarbageFile) {
  const std::string path = TempPath("garbage.eldaw");
  std::ofstream(path) << "this is not a checkpoint";
  Rng rng(10);
  Linear layer(2, 2, true, &rng);
  std::string error;
  EXPECT_FALSE(LoadParameters(&layer, path, &error));
  EXPECT_NE(error.find("not an ELDA checkpoint"), std::string::npos);
}

TEST(SerializeTest, RejectsTruncatedFile) {
  SmallNet source(11);
  const std::string path = TempPath("truncated.eldaw");
  ASSERT_TRUE(SaveParameters(source, path));
  // Truncate to half.
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(),
            static_cast<std::streamsize>(content.size() / 2));
  out.close();
  SmallNet target(12);
  std::string error;
  EXPECT_FALSE(LoadParameters(&target, path, &error));
}

TEST(SerializeTest, LegacyV1FileStillLoads) {
  Rng rng(20);
  Linear layer(2, 2, true, &rng);
  const auto named = layer.NamedParameters();
  std::string bytes = V1Header(named.size());
  std::vector<float> expected;
  float next = 0.25f;
  for (const auto& [name, var] : named) {
    AppendPod(&bytes, static_cast<uint32_t>(name.size()));
    bytes.append(name);
    const Tensor& value = var.value();
    AppendPod(&bytes, static_cast<uint32_t>(value.dim()));
    for (int64_t d : value.shape()) AppendPod(&bytes, d);
    for (int64_t i = 0; i < value.size(); ++i) {
      AppendPod(&bytes, next);
      expected.push_back(next);
      next += 0.25f;
    }
  }
  const std::string path = TempPath("legacy_v1.eldaw");
  WriteBytes(path, bytes);

  std::string error;
  ASSERT_TRUE(LoadParameters(&layer, path, &error)) << error;
  size_t k = 0;
  for (const auto& [name, var] : layer.NamedParameters()) {
    const Tensor& value = var.value();
    for (int64_t i = 0; i < value.size(); ++i) {
      EXPECT_FLOAT_EQ(value[i], expected[k++]) << name;
    }
  }
}

TEST(SerializeTest, RejectsNonPositiveDims) {
  Rng rng(21);
  Linear layer(2, 2, true, &rng);
  std::string bytes = V1Header(layer.NamedParameters().size());
  const std::string name = "weight";
  AppendPod(&bytes, static_cast<uint32_t>(name.size()));
  bytes.append(name);
  AppendPod(&bytes, static_cast<uint32_t>(1));        // rank
  AppendPod(&bytes, static_cast<int64_t>(-4));        // negative dim
  const std::string path = TempPath("negative_dims.eldaw");
  WriteBytes(path, bytes);

  std::string error;
  EXPECT_FALSE(LoadParameters(&layer, path, &error));
  EXPECT_NE(error.find("rejected dimensions"), std::string::npos) << error;
}

TEST(SerializeTest, RejectsOversizedDimsBeforeAllocating) {
  Rng rng(22);
  Linear layer(2, 2, true, &rng);
  std::string bytes = V1Header(layer.NamedParameters().size());
  const std::string name = "weight";
  AppendPod(&bytes, static_cast<uint32_t>(name.size()));
  bytes.append(name);
  AppendPod(&bytes, static_cast<uint32_t>(2));  // rank
  // 2^20 x 2^20 floats = 4 TiB: must be rejected by the volume cap, not
  // attempted as an allocation.
  AppendPod(&bytes, int64_t{1} << 20);
  AppendPod(&bytes, int64_t{1} << 20);
  const std::string path = TempPath("oversized_dims.eldaw");
  WriteBytes(path, bytes);

  std::string error;
  EXPECT_FALSE(LoadParameters(&layer, path, &error));
  EXPECT_NE(error.find("rejected dimensions"), std::string::npos) << error;
}

TEST(SerializeTest, BitFlippedV2FileIsRejectedByChecksum) {
  SmallNet source(23);
  const std::string path = TempPath("bitflip.eldaw");
  ASSERT_TRUE(SaveParameters(source, path));
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 50u);
  bytes[40] ^= 0x01;  // inside the params payload
  WriteBytes(path, bytes);

  SmallNet target(24);
  std::string error;
  EXPECT_FALSE(LoadParameters(&target, path, &error));
  EXPECT_NE(error.find("checksum mismatch"), std::string::npos) << error;
}

TEST(SerializeTest, MissingFileFailsGracefully) {
  Rng rng(13);
  Linear layer(2, 2, true, &rng);
  std::string error;
  EXPECT_FALSE(LoadParameters(&layer, "/nonexistent/path.eldaw", &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace nn
}  // namespace elda
