// Fleet-grade serving contracts: session checkpoint/restore, idle
// eviction, backpressure, deadlines, multi-worker sharding, and the
// fault-injected failure paths.
//
// The load-bearing identity throughout is bitwise: a session killed and
// restored from a snapshot — or evicted with checkpoint and rehydrated —
// must continue scoring exactly the risks the uninterrupted stream would
// have produced, for every registry model (incremental and replay
// fallback alike). The fault-plan tests drive the serve faults
// (drop_snapshot, poison_state, slow_worker) end-to-end: a corrupt
// session record quarantines rather than poisoning its fleet, a dropped
// snapshot leaves the previous file intact, a slow worker changes no
// value anywhere.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/baselines.h"
#include "data/pipeline.h"
#include "gtest/gtest.h"
#include "health/health.h"
#include "nn/forward_context.h"
#include "nn/step_state.h"
#include "serve/micro_batcher.h"
#include "serve/service.h"
#include "serve/session.h"
#include "serve/snapshot.h"
#include "train/trainer.h"

namespace elda {
namespace {

constexpr int64_t kFeatures = 5;

std::string TempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

data::Batch RandomPatient(int64_t steps, uint64_t seed) {
  Rng rng(seed);
  data::Batch b;
  b.x = Tensor::Normal({1, steps, kFeatures}, 0.0f, 1.0f, &rng);
  b.mask = Tensor({1, steps, kFeatures});
  for (int64_t i = 0; i < b.mask.size(); ++i) {
    b.mask[i] = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
  }
  b.delta = Tensor({1, steps, kFeatures});
  for (int64_t i = 0; i < b.delta.size(); ++i) {
    b.delta[i] = static_cast<float>(rng.Uniform() * 3.0);
  }
  b.y = Tensor::Zeros({1});
  return b;
}

serve::Observation RowObservation(const data::Batch& patient, int64_t t) {
  serve::Observation obs;
  obs.x.assign(patient.x.data() + t * kFeatures,
               patient.x.data() + (t + 1) * kFeatures);
  obs.mask.assign(patient.mask.data() + t * kFeatures,
                  patient.mask.data() + (t + 1) * kFeatures);
  obs.delta.assign(patient.delta.data() + t * kFeatures,
                   patient.delta.data() + (t + 1) * kFeatures);
  return obs;
}

std::vector<std::string> AllRegistryNames() {
  std::vector<std::string> names = baselines::AllModelNames();
  names.push_back("ELDA-Net-Fbi*");
  names.push_back("ELDA-Net-Ffm*");
  return names;
}

// Risks from streaming `patient` through a fresh sync service — the
// uninterrupted reference every restore/rehydrate test compares against.
std::vector<float> UninterruptedRisks(const train::SequenceModel* model,
                                      const data::Batch& patient, int64_t T,
                                      int64_t window_capacity) {
  serve::ServeConfig config;
  config.async = false;
  config.window_capacity = window_capacity;
  serve::InferenceService service(model, config);
  const serve::SessionId id = service.Admit();
  std::vector<float> risks;
  for (int64_t t = 0; t < T; ++t) {
    risks.push_back(service.Observe(id, RowObservation(patient, t)).risk);
  }
  return risks;
}

void ExpectSameRisk(float got, float want, const char* what, int64_t t) {
  if (std::isnan(want)) {
    EXPECT_TRUE(std::isnan(got)) << what << " step " << t;
  } else {
    EXPECT_EQ(got, want) << what << " step " << t;
  }
}

class FaultPlanGuard {
 public:
  explicit FaultPlanGuard(const health::FaultPlan& plan) {
    health::GlobalFaultInjector()->Arm(plan);
  }
  ~FaultPlanGuard() { health::GlobalFaultInjector()->Disarm(); }
};

// -- StepState Save/Load -----------------------------------------------------

// The state-level contract under everything else: Save into bytes, Load
// into a fresh MakeStepState allocation, and both copies keep producing
// bitwise-equal logits — for every registry model.
TEST(ServeRobustnessTest, StateSaveLoadRoundTripBitwise) {
  const int64_t T = 7;
  const int64_t split = 3;
  for (const std::string& name : AllRegistryNames()) {
    SCOPED_TRACE(name);
    auto model = baselines::MakeModel(name, kFeatures, /*seed=*/3);
    const data::Batch patient = RandomPatient(T, 41);
    ag::NoGradScope no_grad;
    auto original = model->MakeStepState(T);
    for (int64_t t = 0; t < split; ++t) {
      serve::Observation obs = RowObservation(patient, t);
      train::StepBatch sb;
      sb.x = Tensor::Empty({1, kFeatures});
      sb.mask = Tensor::Empty({1, kFeatures});
      sb.delta = Tensor::Empty({1, kFeatures});
      std::memcpy(sb.x.data(), obs.x.data(), sizeof(float) * kFeatures);
      std::memcpy(sb.mask.data(), obs.mask.data(),
                  sizeof(float) * kFeatures);
      std::memcpy(sb.delta.data(), obs.delta.data(),
                  sizeof(float) * kFeatures);
      model->StepForward(sb, {original.get()}, nullptr);
    }
    nn::StateWriter writer;
    original->Save(&writer);
    const std::string bytes = writer.Take();
    auto restored = model->MakeStepState(T);
    nn::StateReader reader(bytes);
    ASSERT_TRUE(restored->Load(&reader));
    ASSERT_TRUE(reader.AtEnd()) << "trailing bytes after Load";
    ASSERT_EQ(restored->steps_seen, original->steps_seen);
    for (int64_t t = split; t < T; ++t) {
      serve::Observation obs = RowObservation(patient, t);
      train::StepBatch sb;
      sb.x = Tensor::Empty({1, kFeatures});
      sb.mask = Tensor::Empty({1, kFeatures});
      sb.delta = Tensor::Empty({1, kFeatures});
      std::memcpy(sb.x.data(), obs.x.data(), sizeof(float) * kFeatures);
      std::memcpy(sb.mask.data(), obs.mask.data(),
                  sizeof(float) * kFeatures);
      std::memcpy(sb.delta.data(), obs.delta.data(),
                  sizeof(float) * kFeatures);
      const Tensor a =
          model->StepForward(sb, {original.get()}, nullptr).value();
      const Tensor b =
          model->StepForward(sb, {restored.get()}, nullptr).value();
      if (std::isnan(a[0])) {
        EXPECT_TRUE(std::isnan(b[0])) << "step " << t;
      } else {
        EXPECT_EQ(a[0], b[0]) << "step " << t;
      }
    }
  }
}

// A truncated state payload is rejected by Load, never half-applied.
TEST(ServeRobustnessTest, TruncatedStatePayloadRejected) {
  auto model = baselines::MakeModel("GRU", kFeatures, /*seed=*/3);
  auto state = model->MakeStepState(8);
  const data::Batch patient = RandomPatient(2, 9);
  ag::NoGradScope no_grad;
  train::StepBatch sb;
  sb.x = Tensor::Empty({1, kFeatures});
  sb.mask = Tensor::Empty({1, kFeatures});
  sb.delta = Tensor::Empty({1, kFeatures});
  serve::Observation obs = RowObservation(patient, 0);
  std::memcpy(sb.x.data(), obs.x.data(), sizeof(float) * kFeatures);
  std::memcpy(sb.mask.data(), obs.mask.data(), sizeof(float) * kFeatures);
  std::memcpy(sb.delta.data(), obs.delta.data(), sizeof(float) * kFeatures);
  model->StepForward(sb, {state.get()}, nullptr);
  nn::StateWriter writer;
  state->Save(&writer);
  const std::string bytes = writer.Take();
  for (size_t cut : {size_t{0}, size_t{4}, bytes.size() - 1}) {
    auto fresh = model->MakeStepState(8);
    nn::StateReader reader(bytes.data(), cut);
    EXPECT_FALSE(fresh->Load(&reader) && reader.AtEnd())
        << "cut=" << cut << " accepted";
  }
}

// -- Kill-and-restore --------------------------------------------------------

// The tentpole identity: snapshot mid-stream, destroy the service (the
// "kill"), restore into a fresh one, keep streaming — every post-restore
// risk is bitwise what the uninterrupted stream produced. Every registry
// model.
TEST(ServeRobustnessTest, KillAndRestoreBitwiseIdentity) {
  const int64_t T = 8;
  const int64_t kill_at = 4;
  const std::string path = TempPath("serve_kill_restore.ckpt");
  for (const std::string& name : AllRegistryNames()) {
    SCOPED_TRACE(name);
    auto model = baselines::MakeModel(name, kFeatures, /*seed=*/3);
    const data::Batch patient = RandomPatient(T, 51);
    const std::vector<float> want =
        UninterruptedRisks(model.get(), patient, T, T);

    serve::ServeConfig config;
    config.async = false;
    config.window_capacity = T;
    serve::SessionId id;
    {
      serve::InferenceService service(model.get(), config);
      id = service.Admit("bed-7");
      for (int64_t t = 0; t < kill_at; ++t) {
        ExpectSameRisk(service.Observe(id, RowObservation(patient, t)).risk,
                       want[static_cast<size_t>(t)], "pre-kill", t);
      }
      ASSERT_TRUE(service.SaveSnapshotTo(path));
    }  // service destroyed: the kill

    serve::InferenceService revived(model.get(), config);
    std::string error;
    ASSERT_TRUE(revived.RestoreSnapshot(path, &error)) << error;
    ASSERT_EQ(revived.sessions().size(), 1);
    const std::shared_ptr<serve::Session> session =
        revived.sessions().Get(id);
    ASSERT_NE(session, nullptr) << "restored session lost its id";
    EXPECT_EQ(session->tag, "bed-7");
    EXPECT_EQ(session->observations.load(), kill_at);
    for (int64_t t = kill_at; t < T; ++t) {
      ExpectSameRisk(revived.Observe(id, RowObservation(patient, t)).risk,
                     want[static_cast<size_t>(t)], "post-restore", t);
    }
  }
}

// The same identity through the async multi-worker path: snapshot under a
// live batcher fleet (Pause/Resume quiesce), restore, continue async.
TEST(ServeRobustnessTest, AsyncKillAndRestoreBitwise) {
  const int64_t T = 8;
  const int64_t kill_at = 4;
  const int64_t num_sessions = 6;
  const std::string path = TempPath("serve_async_kill_restore.ckpt");
  auto model = baselines::MakeModel("ELDA-Net", kFeatures, /*seed=*/3);
  std::vector<data::Batch> patients;
  std::vector<std::vector<float>> want;
  for (int64_t s = 0; s < num_sessions; ++s) {
    patients.push_back(RandomPatient(T, 700 + static_cast<uint64_t>(s)));
    want.push_back(UninterruptedRisks(model.get(), patients.back(), T, T));
  }

  serve::ServeConfig config;
  config.async = true;
  config.num_workers = 2;
  config.window_capacity = T;
  std::vector<serve::SessionId> ids;
  {
    serve::InferenceService service(model.get(), config);
    for (int64_t s = 0; s < num_sessions; ++s) {
      ids.push_back(service.Admit("bed-" + std::to_string(s)));
    }
    for (int64_t t = 0; t < kill_at; ++t) {
      std::vector<std::future<serve::StepResult>> futures;
      for (int64_t s = 0; s < num_sessions; ++s) {
        futures.push_back(
            service.ObserveAsync(ids[s], RowObservation(patients[s], t)));
      }
      for (int64_t s = 0; s < num_sessions; ++s) {
        ExpectSameRisk(futures[static_cast<size_t>(s)].get().risk,
                       want[static_cast<size_t>(s)][static_cast<size_t>(t)],
                       "pre-kill", t);
      }
    }
    ASSERT_TRUE(service.SaveSnapshotTo(path));
  }

  serve::InferenceService revived(model.get(), config);
  std::string error;
  ASSERT_TRUE(revived.RestoreSnapshot(path, &error)) << error;
  ASSERT_EQ(revived.sessions().size(), num_sessions);
  for (int64_t t = kill_at; t < T; ++t) {
    std::vector<std::future<serve::StepResult>> futures;
    for (int64_t s = 0; s < num_sessions; ++s) {
      futures.push_back(
          revived.ObserveAsync(ids[s], RowObservation(patients[s], t)));
    }
    for (int64_t s = 0; s < num_sessions; ++s) {
      ExpectSameRisk(futures[static_cast<size_t>(s)].get().risk,
                     want[static_cast<size_t>(s)][static_cast<size_t>(t)],
                     "post-restore", t);
    }
  }
}

// Restore is strict about what it accepts: a non-empty table, a different
// model, or a different window capacity are refused outright.
TEST(ServeRobustnessTest, RestoreValidatesMetaAndEmptiness) {
  const std::string path = TempPath("serve_restore_validate.ckpt");
  auto model = baselines::MakeModel("GRU", kFeatures, /*seed=*/3);
  const data::Batch patient = RandomPatient(3, 5);
  serve::ServeConfig config;
  config.async = false;
  config.window_capacity = 8;
  {
    serve::InferenceService service(model.get(), config);
    const serve::SessionId id = service.Admit();
    service.Observe(id, RowObservation(patient, 0));
    ASSERT_TRUE(service.SaveSnapshotTo(path));
  }
  {
    // Non-empty table.
    serve::InferenceService busy(model.get(), config);
    busy.Admit();
    EXPECT_FALSE(busy.RestoreSnapshot(path));
  }
  {
    // Wrong model.
    auto other = baselines::MakeModel("GRU-D", kFeatures, /*seed=*/3);
    serve::InferenceService mismatched(other.get(), config);
    std::string error;
    EXPECT_FALSE(mismatched.RestoreSnapshot(path, &error));
    EXPECT_NE(error.find("GRU"), std::string::npos);
  }
  {
    // Wrong window capacity.
    serve::ServeConfig narrow = config;
    narrow.window_capacity = 4;
    serve::InferenceService mismatched(model.get(), narrow);
    EXPECT_FALSE(mismatched.RestoreSnapshot(path));
  }
}

// -- Eviction ----------------------------------------------------------------

// checkpoint-then-evict parks the LRU session's serialized state;
// re-admission under the same tag rehydrates it and scoring continues
// bitwise as if never evicted.
TEST(ServeRobustnessTest, EvictThenRehydrateBitwise) {
  const int64_t T = 8;
  const int64_t evict_at = 4;
  auto model = baselines::MakeModel("GRU-D", kFeatures, /*seed=*/3);
  const data::Batch patient = RandomPatient(T, 61);
  const std::vector<float> want =
      UninterruptedRisks(model.get(), patient, T, T);

  serve::ServeConfig config;
  config.async = false;
  config.window_capacity = T;
  config.max_sessions = 2;
  config.eviction = serve::EvictionPolicy::kCheckpointThenEvict;
  serve::InferenceService service(model.get(), config);
  const serve::SessionId id = service.Admit("bed-a");
  for (int64_t t = 0; t < evict_at; ++t) {
    ExpectSameRisk(service.Observe(id, RowObservation(patient, t)).risk,
                   want[static_cast<size_t>(t)], "pre-evict", t);
  }
  // Fill the table past capacity: bed-a is the LRU, so the third
  // admission parks it.
  ASSERT_NE(service.Admit("bed-b"), serve::kInvalidSession);
  ASSERT_NE(service.Admit("bed-c"), serve::kInvalidSession);
  EXPECT_EQ(service.sessions().evicted_total(), 1);
  EXPECT_EQ(service.sessions().parked_count(), 1);
  EXPECT_EQ(service.sessions().Get(id), nullptr);
  EXPECT_FALSE(service.Observe(id, RowObservation(patient, evict_at)).ok);

  // Re-admission under the tag rehydrates: same id, mid-stream state.
  // (Making room parks bed-b in turn, so one parked entry remains.)
  const serve::SessionId back = service.Admit("bed-a");
  EXPECT_EQ(back, id);
  EXPECT_EQ(service.sessions().rehydrated_total(), 1);
  EXPECT_EQ(service.sessions().parked_count(), 1);
  for (int64_t t = evict_at; t < T; ++t) {
    ExpectSameRisk(service.Observe(back, RowObservation(patient, t)).risk,
                   want[static_cast<size_t>(t)], "post-rehydrate", t);
  }
}

// Under plain kEvict the shed session is gone for good: re-admission gets
// a fresh id and cold state.
TEST(ServeRobustnessTest, PlainEvictStartsCold) {
  auto model = baselines::MakeModel("GRU", kFeatures, /*seed=*/3);
  const data::Batch patient = RandomPatient(4, 71);
  serve::ServeConfig config;
  config.async = false;
  config.max_sessions = 1;
  config.eviction = serve::EvictionPolicy::kEvict;
  serve::InferenceService service(model.get(), config);
  const serve::SessionId id = service.Admit("bed-a");
  service.Observe(id, RowObservation(patient, 0));
  service.Observe(id, RowObservation(patient, 1));
  ASSERT_NE(service.Admit("bed-b"), serve::kInvalidSession);
  EXPECT_EQ(service.sessions().evicted_total(), 1);
  EXPECT_EQ(service.sessions().parked_count(), 0);
  const serve::SessionId again = service.Admit("bed-a");
  EXPECT_NE(again, id);
  const serve::StepResult r =
      service.Observe(again, RowObservation(patient, 0));
  EXPECT_EQ(r.step, 1) << "rehydrated instead of cold";
}

// The idle-TTL sweep evicts exactly the sessions whose idle age exceeds
// the TTL, and parked sessions survive a snapshot/restore cycle.
TEST(ServeRobustnessTest, IdleTtlSweepAndParkedSurviveSnapshot) {
  const std::string path = TempPath("serve_idle_parked.ckpt");
  auto model = baselines::MakeModel("GRU", kFeatures, /*seed=*/3);
  const data::Batch patient = RandomPatient(8, 81);
  serve::ServeConfig config;
  config.async = false;
  config.window_capacity = 8;
  config.eviction = serve::EvictionPolicy::kCheckpointThenEvict;
  config.idle_ttl = 4;  // swept manually below; no maintenance thread
  serve::InferenceService service(model.get(), config);
  const serve::SessionId idle_id = service.Admit("bed-idle");
  const serve::SessionId busy_id = service.Admit("bed-busy");
  service.Observe(idle_id, RowObservation(patient, 0));
  for (int64_t t = 0; t < 6; ++t) {
    service.Observe(busy_id, RowObservation(patient, t));
  }
  EXPECT_EQ(service.SweepIdle(), 1);
  EXPECT_EQ(service.sessions().size(), 1);
  EXPECT_EQ(service.sessions().parked_count(), 1);
  EXPECT_NE(service.sessions().Get(busy_id), nullptr);

  // The parked state rides the snapshot into a fresh service and still
  // rehydrates there.
  ASSERT_TRUE(service.SaveSnapshotTo(path));
  serve::InferenceService revived(model.get(), config);
  std::string error;
  ASSERT_TRUE(revived.RestoreSnapshot(path, &error)) << error;
  EXPECT_EQ(revived.sessions().parked_count(), 1);
  const serve::SessionId back = revived.Admit("bed-idle");
  EXPECT_EQ(back, idle_id);
  EXPECT_EQ(revived.sessions().rehydrated_total(), 1);
  const serve::StepResult r =
      revived.Observe(back, RowObservation(patient, 1));
  EXPECT_EQ(r.step, 2) << "parked state did not survive the snapshot";
}

// Parked bytes with trailing garbage are rejected exactly like snapshot
// restore rejects them (Load must consume every byte): the re-admission
// falls back to a cold session instead of trusting a suspect payload.
TEST(ServeRobustnessTest, RehydrationRejectsTrailingGarbage) {
  auto model = baselines::MakeModel("GRU", kFeatures, /*seed=*/3);
  serve::SessionTable table(model.get(), /*window_capacity=*/8,
                            /*max_sessions=*/4,
                            serve::EvictionPolicy::kCheckpointThenEvict);
  // A genuine serialized state, then one stray byte appended.
  auto state = model->MakeStepState(8);
  nn::StateWriter writer;
  state->Save(&writer);
  serve::ParkedSession parked;
  parked.id = 7;
  parked.state = writer.Take() + '\x01';
  table.RestoreParked("bed-x", parked);
  const std::shared_ptr<serve::Session> session = table.Admit("bed-x");
  ASSERT_NE(session, nullptr);
  EXPECT_NE(session->id, 7) << "trailing garbage rehydrated anyway";
  EXPECT_EQ(session->state->steps_seen, 0);
  EXPECT_EQ(table.rehydrated_total(), 0);
  EXPECT_EQ(table.parked_count(), 0) << "suspect parked bytes kept";
}

// A checkpoint-then-evicted session carries its monitoring mirrors
// (last_risk / ever_scored) through the park and back.
TEST(ServeRobustnessTest, RehydrationRestoresMonitoringMirrors) {
  const int64_t T = 4;
  auto model = baselines::MakeModel("GRU", kFeatures, /*seed=*/3);
  const data::Batch patient = RandomPatient(T, 201);
  serve::ServeConfig config;
  config.async = false;
  config.window_capacity = T;
  config.max_sessions = 1;
  config.eviction = serve::EvictionPolicy::kCheckpointThenEvict;
  serve::InferenceService service(model.get(), config);
  const serve::SessionId id = service.Admit("bed-a");
  float last = 0.0f;
  for (int64_t t = 0; t < T; ++t) {
    last = service.Observe(id, RowObservation(patient, t)).risk;
  }
  ASSERT_NE(service.Admit("bed-b"), serve::kInvalidSession);  // parks bed-a
  const serve::SessionId back = service.Admit("bed-a");
  const std::shared_ptr<serve::Session> session =
      service.sessions().Get(back);
  ASSERT_NE(session, nullptr);
  EXPECT_TRUE(session->ever_scored.load());
  EXPECT_EQ(session->last_risk.load(), last);
}

// Restoring a snapshot with more resident sessions than the target
// table's bound is refused outright, not silently overshot.
TEST(ServeRobustnessTest, RestoreRefusesOverCapacitySnapshot) {
  const std::string path = TempPath("serve_over_capacity.ckpt");
  auto model = baselines::MakeModel("GRU", kFeatures, /*seed=*/3);
  const data::Batch patient = RandomPatient(1, 211);
  serve::ServeConfig config;
  config.async = false;
  config.max_sessions = 8;
  {
    serve::InferenceService service(model.get(), config);
    for (int64_t s = 0; s < 3; ++s) {
      service.Observe(service.Admit(), RowObservation(patient, 0));
    }
    ASSERT_TRUE(service.SaveSnapshotTo(path));
  }
  serve::ServeConfig narrow = config;
  narrow.max_sessions = 2;
  serve::InferenceService small(model.get(), narrow);
  std::string error;
  EXPECT_FALSE(small.RestoreSnapshot(path, &error));
  EXPECT_NE(error.find("capacity"), std::string::npos) << error;
  EXPECT_EQ(small.sessions().size(), 0);
  // The same snapshot restores fine at the bound it was written under.
  serve::InferenceService roomy(model.get(), config);
  EXPECT_TRUE(roomy.RestoreSnapshot(path, &error)) << error;
  EXPECT_EQ(roomy.sessions().size(), 3);
}

// Even with eviction disabled (kRejectAdmits), a pinned stale admission
// is visible: max_idle_age grows while the session sits unobserved and
// collapses once it scores again.
TEST(ServeRobustnessTest, MaxIdleAgeVisibleWithoutEviction) {
  auto model = baselines::MakeModel("GRU", kFeatures, /*seed=*/3);
  const data::Batch patient = RandomPatient(8, 91);
  serve::ServeConfig config;
  config.async = false;
  serve::InferenceService service(model.get(), config);
  const serve::SessionId pinned = service.Admit("bed-pinned");
  const serve::SessionId busy = service.Admit("bed-busy");
  for (int64_t t = 0; t < 6; ++t) {
    service.Observe(busy, RowObservation(patient, t));
  }
  const serve::ServiceStats before = service.stats();
  EXPECT_GE(before.max_idle_age, 6) << "pinned session not visible";
  service.Observe(pinned, RowObservation(patient, 0));
  const serve::ServiceStats after = service.stats();
  EXPECT_LT(after.max_idle_age, before.max_idle_age);
}

// -- Backpressure and deadlines ---------------------------------------------

// A flood against a full bounded queue is rejected explicitly (kRejected)
// while everything already queued scores normally after resume.
TEST(ServeRobustnessTest, BackpressureRejectsFloodExplicitly) {
  const int64_t kQueue = 4;
  auto model = baselines::MakeModel("GRU", kFeatures, /*seed=*/3);
  const data::Batch patient = RandomPatient(1, 101);
  serve::ServeConfig config;
  config.async = true;
  config.max_queue = kQueue;
  config.max_delay_us = 0;
  serve::InferenceService service(model.get(), config);
  std::vector<serve::SessionId> ids;
  for (int64_t s = 0; s < 12; ++s) {
    ids.push_back(service.Admit());
  }
  service.PauseScoring();  // wedge the worker: the queue can only fill
  std::vector<std::future<serve::StepResult>> futures;
  for (int64_t s = 0; s < 12; ++s) {
    futures.push_back(
        service.ObserveAsync(ids[s], RowObservation(patient, 0)));
  }
  // The first kQueue requests sit in the queue; the rest bounced.
  int64_t rejected = 0;
  for (int64_t s = kQueue; s < 12; ++s) {
    const serve::StepResult r = futures[static_cast<size_t>(s)].get();
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.status, serve::StepStatus::kRejected);
    ++rejected;
  }
  EXPECT_EQ(rejected, 12 - kQueue);
  EXPECT_EQ(service.stats().rejected, 12 - kQueue);
  EXPECT_EQ(service.stats().queue_depth, kQueue);
  service.ResumeScoring();
  for (int64_t s = 0; s < kQueue; ++s) {
    const serve::StepResult r = futures[static_cast<size_t>(s)].get();
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.step, 1);
  }
  // A rejected observation never advanced its session: resubmission is
  // step 1, not step 2.
  const serve::StepResult retry =
      service.Observe(ids[kQueue], RowObservation(patient, 0));
  EXPECT_TRUE(retry.ok);
  EXPECT_EQ(retry.step, 1);
}

// block_when_full parks the submitter instead of rejecting; the blocked
// submission completes once the worker drains.
TEST(ServeRobustnessTest, BackpressureBlocksWhenConfigured) {
  auto model = baselines::MakeModel("GRU", kFeatures, /*seed=*/3);
  const data::Batch patient = RandomPatient(1, 111);
  serve::ServeConfig config;
  config.async = true;
  config.max_queue = 2;
  config.block_when_full = true;
  config.max_delay_us = 0;
  serve::InferenceService service(model.get(), config);
  std::vector<serve::SessionId> ids;
  for (int64_t s = 0; s < 4; ++s) ids.push_back(service.Admit());
  service.PauseScoring();
  std::vector<std::future<serve::StepResult>> queued;
  for (int64_t s = 0; s < 2; ++s) {
    queued.push_back(
        service.ObserveAsync(ids[s], RowObservation(patient, 0)));
  }
  // The next submission blocks until the worker resumes and drains.
  std::thread unblocker([&service] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    service.ResumeScoring();
  });
  const serve::StepResult blocked =
      service.Observe(ids[2], RowObservation(patient, 0));
  unblocker.join();
  EXPECT_TRUE(blocked.ok);
  EXPECT_EQ(blocked.step, 1);
  for (auto& f : queued) EXPECT_TRUE(f.get().ok);
  EXPECT_EQ(service.stats().rejected, 0);
}

// A request whose deadline passes while queued resolves kExpired and does
// NOT advance its session, so the observation can be resubmitted.
TEST(ServeRobustnessTest, DeadlineExpiresQueuedWork) {
  auto model = baselines::MakeModel("GRU", kFeatures, /*seed=*/3);
  const data::Batch patient = RandomPatient(2, 121);
  serve::ServeConfig config;
  config.async = true;
  config.max_delay_us = 0;
  serve::InferenceService service(model.get(), config);
  const serve::SessionId id = service.Admit();
  service.PauseScoring();
  // Already-expired deadline: the worker must drop it at assembly.
  std::future<serve::StepResult> doomed = service.ObserveAsync(
      id, RowObservation(patient, 0), nullptr,
      std::chrono::steady_clock::now() - std::chrono::microseconds(1));
  // A fresh no-deadline request behind it scores normally.
  std::future<serve::StepResult> fine =
      service.ObserveAsync(id, RowObservation(patient, 0));
  service.ResumeScoring();
  const serve::StepResult dead = doomed.get();
  EXPECT_FALSE(dead.ok);
  EXPECT_EQ(dead.status, serve::StepStatus::kExpired);
  const serve::StepResult live = fine.get();
  EXPECT_TRUE(live.ok);
  EXPECT_EQ(live.step, 1) << "expired request advanced the session";
  EXPECT_EQ(service.stats().expired, 1);
}

// -- Quiescence --------------------------------------------------------------

// Pause() must quiesce a worker that is lingering for batch coalescing,
// not just one parked on the empty-queue wait: after Pause returns, a
// queued request must NOT score until Resume, even once the linger delay
// has long elapsed.
TEST(ServeRobustnessTest, PauseDuringLingerQuiescesWorker) {
  auto model = baselines::MakeModel("GRU", kFeatures, /*seed=*/3);
  const data::Batch patient = RandomPatient(1, 161);
  serve::ServeConfig config;
  config.async = true;
  config.max_delay_us = 100000;  // 100ms linger: the worker waits in it
  serve::InferenceService service(model.get(), config);
  const serve::SessionId id = service.Admit();
  std::future<serve::StepResult> future =
      service.ObserveAsync(id, RowObservation(patient, 0));
  // Give the worker time to pick the request up and enter its linger.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  service.PauseScoring();
  // Outlive the linger: a worker that ignored the pause would have
  // assembled and scored the batch by now.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::timeout)
      << "request scored while the service was paused";
  EXPECT_EQ(service.stats().observations, 0);
  service.ResumeScoring();
  const serve::StepResult r = future.get();
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.step, 1);
}

// Pause/Resume nest: a snapshot taken inside a user-held pause (its own
// internal Pause/Resume pair) must not un-pause the workers the user is
// still relying on.
TEST(ServeRobustnessTest, NestedPauseSurvivesInnerSnapshot) {
  const std::string path = TempPath("serve_nested_pause.ckpt");
  auto model = baselines::MakeModel("GRU", kFeatures, /*seed=*/3);
  const data::Batch patient = RandomPatient(1, 171);
  serve::ServeConfig config;
  config.async = true;
  config.max_delay_us = 0;
  serve::InferenceService service(model.get(), config);
  const serve::SessionId id = service.Admit();
  service.PauseScoring();
  std::future<serve::StepResult> future =
      service.ObserveAsync(id, RowObservation(patient, 0));
  // The snapshot pauses and resumes internally — one level deeper than
  // the pause this test still holds.
  ASSERT_TRUE(service.SaveSnapshotTo(path));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::timeout)
      << "inner snapshot's Resume un-paused the outer quiesce window";
  service.ResumeScoring();
  EXPECT_TRUE(future.get().ok);
}

// At-capacity eviction with requests still queued for the victim: the
// eviction parks the state as-of-now, the queued requests resolve
// kUnknownSession (they must not advance a state that was just parked),
// and same-tag re-admission rehydrates bitwise.
TEST(ServeRobustnessTest, EvictionFailsQueuedRequestsAndParksCleanly) {
  const int64_t T = 6;
  const int64_t evict_at = 2;
  auto model = baselines::MakeModel("GRU", kFeatures, /*seed=*/3);
  const data::Batch patient = RandomPatient(T, 181);
  const std::vector<float> want =
      UninterruptedRisks(model.get(), patient, T, T);
  serve::ServeConfig config;
  config.async = true;
  config.max_delay_us = 0;
  config.window_capacity = T;
  config.max_sessions = 2;
  config.eviction = serve::EvictionPolicy::kCheckpointThenEvict;
  serve::InferenceService service(model.get(), config);
  const serve::SessionId a = service.Admit("bed-a");
  const serve::SessionId b = service.Admit("bed-b");
  for (int64_t t = 0; t < evict_at; ++t) {
    ExpectSameRisk(service.Observe(a, RowObservation(patient, t)).risk,
                   want[static_cast<size_t>(t)], "pre-evict", t);
  }
  service.PauseScoring();
  std::vector<std::future<serve::StepResult>> stranded;
  for (int64_t k = 0; k < 3; ++k) {
    stranded.push_back(
        service.ObserveAsync(a, RowObservation(patient, evict_at)));
  }
  // Touch bed-b AFTER stranding bed-a's requests: submission bumps
  // last_observed, so bed-a only stays the LRU victim if something else
  // was touched later — exactly the under-load shape (a session whose
  // requests sit on a paused worker while its neighbours keep streaming).
  std::future<serve::StepResult> keep_b =
      service.ObserveAsync(b, RowObservation(patient, 0));
  // Admitting at capacity evicts bed-a (nested inside the held pause)
  // with the three requests above still queued behind it.
  ASSERT_NE(service.Admit("bed-c"), serve::kInvalidSession);
  EXPECT_EQ(service.sessions().parked_count(), 1);
  EXPECT_EQ(service.sessions().Get(a), nullptr) << "evicted the wrong bed";
  service.ResumeScoring();
  EXPECT_TRUE(keep_b.get().ok);
  for (auto& f : stranded) {
    const serve::StepResult r = f.get();
    EXPECT_FALSE(r.ok) << "request scored against an evicted session";
    EXPECT_EQ(r.status, serve::StepStatus::kUnknownSession);
  }
  // Rehydration resumes exactly at the parked step — the stranded
  // requests advanced nothing.
  const serve::SessionId back = service.Admit("bed-a");
  EXPECT_EQ(back, a);
  for (int64_t t = evict_at; t < T; ++t) {
    ExpectSameRisk(service.Observe(back, RowObservation(patient, t)).risk,
                   want[static_cast<size_t>(t)], "post-rehydrate", t);
  }
}

// TSan stress for eviction-vs-scoring: client threads flood observations
// while admissions churn the table past capacity, so every eviction races
// live scoring. Values are checked only for sanity (ok or a clean
// eviction/rejection status); the suite's real assertion is TSan finding
// no data race between StepState::Save and StepForward.
TEST(ServeRobustnessTest, EvictionChurnUnderConcurrentScoring) {
  const int64_t kClients = 3;
  const int64_t kRounds = 40;
  auto model = baselines::MakeModel("GRU", kFeatures, /*seed=*/3);
  const data::Batch patient = RandomPatient(1, 191);
  serve::ServeConfig config;
  config.async = true;
  config.num_workers = 2;
  config.max_delay_us = 0;
  config.max_sessions = 4;
  config.eviction = serve::EvictionPolicy::kCheckpointThenEvict;
  serve::InferenceService service(model.get(), config);
  std::vector<serve::SessionId> ids;
  for (int64_t s = 0; s < 4; ++s) {
    ids.push_back(service.Admit("seed-" + std::to_string(s)));
  }
  std::vector<std::thread> clients;
  for (int64_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&service, &ids, &patient, c] {
      for (int64_t i = 0; i < kRounds; ++i) {
        const serve::StepResult r = service.Observe(
            ids[static_cast<size_t>((c + i) % 4)],
            RowObservation(patient, 0));
        if (!r.ok) {
          EXPECT_EQ(r.status, serve::StepStatus::kUnknownSession);
        }
      }
    });
  }
  for (int64_t i = 0; i < kRounds; ++i) {
    service.Admit("churn-" + std::to_string(i));
  }
  for (auto& t : clients) t.join();
  EXPECT_GE(service.sessions().evicted_total(), kRounds);
}

// -- Multi-worker sharding ---------------------------------------------------

// N workers score exactly what 1 worker scores: session-affine sharding
// keeps per-session FIFO, and row independence keeps every value bitwise.
TEST(ServeRobustnessTest, FourWorkersMatchOneWorkerBitwise) {
  const int64_t T = 6;
  const int64_t num_sessions = 8;
  auto model = baselines::MakeModel("ELDA-Net", kFeatures, /*seed=*/3);
  std::vector<data::Batch> patients;
  for (int64_t s = 0; s < num_sessions; ++s) {
    patients.push_back(RandomPatient(T, 900 + static_cast<uint64_t>(s)));
  }
  auto run = [&](int64_t workers) {
    serve::ServeConfig config;
    config.async = true;
    config.num_workers = workers;
    config.window_capacity = T;
    config.infer.batch_size = num_sessions;
    serve::InferenceService service(model.get(), config);
    std::vector<serve::SessionId> ids;
    for (int64_t s = 0; s < num_sessions; ++s) {
      ids.push_back(service.Admit());
    }
    std::vector<std::vector<float>> risks(
        num_sessions, std::vector<float>(static_cast<size_t>(T)));
    // Submit all T observations per session up front (per-session order),
    // racing across sessions and workers.
    std::vector<std::vector<std::future<serve::StepResult>>> futures(
        static_cast<size_t>(num_sessions));
    for (int64_t s = 0; s < num_sessions; ++s) {
      for (int64_t t = 0; t < T; ++t) {
        futures[static_cast<size_t>(s)].push_back(
            service.ObserveAsync(ids[s], RowObservation(patients[s], t)));
      }
    }
    for (int64_t s = 0; s < num_sessions; ++s) {
      for (int64_t t = 0; t < T; ++t) {
        const serve::StepResult r =
            futures[static_cast<size_t>(s)][static_cast<size_t>(t)].get();
        EXPECT_TRUE(r.ok);
        EXPECT_EQ(r.step, t + 1) << "FIFO broke on worker fan-out";
        risks[static_cast<size_t>(s)][static_cast<size_t>(t)] = r.risk;
      }
    }
    return risks;
  };
  const auto one = run(1);
  const auto four = run(4);
  for (int64_t s = 0; s < num_sessions; ++s) {
    for (int64_t t = 0; t < T; ++t) {
      ExpectSameRisk(four[static_cast<size_t>(s)][static_cast<size_t>(t)],
                     one[static_cast<size_t>(s)][static_cast<size_t>(t)],
                     "4-worker vs 1-worker", t);
    }
  }
}

// -- Fault plans -------------------------------------------------------------

TEST(ServeRobustnessTest, FaultPlanParsesServeTerms) {
  health::FaultPlan plan;
  std::string error;
  ASSERT_TRUE(health::FaultPlan::Parse(
      "drop_snapshot@0,poison_state@2,slow_worker@1:500", &plan, &error))
      << error;
  EXPECT_EQ(plan.drop_snapshot_at, 0);
  EXPECT_EQ(plan.poison_state_at, 2);
  EXPECT_EQ(plan.slow_worker_index, 1);
  EXPECT_EQ(plan.slow_worker_delay_us, 500);
  EXPECT_TRUE(plan.Any());
  ASSERT_TRUE(health::FaultPlan::Parse("slow_worker@0", &plan, &error));
  EXPECT_EQ(plan.slow_worker_delay_us, 2000) << "default delay lost";
  EXPECT_FALSE(health::FaultPlan::Parse("poison_state@x", &plan, &error));
  EXPECT_FALSE(health::FaultPlan::Parse("drop_snapshot@0:4", &plan, &error))
      << "drop_snapshot must not take a colon suffix";
}

// poison_state@N rots exactly one session record inside the snapshot; the
// restore quarantines that session (fresh state, same id/tag) and brings
// every other session back bitwise.
TEST(ServeRobustnessTest, CorruptSessionRecordQuarantines) {
  const int64_t T = 6;
  const int64_t kill_at = 3;
  const int64_t num_sessions = 3;
  const int64_t poisoned = 1;  // record index == admission order here
  const std::string path = TempPath("serve_poison_state.ckpt");
  auto model = baselines::MakeModel("GRU", kFeatures, /*seed=*/3);
  std::vector<data::Batch> patients;
  std::vector<std::vector<float>> want;
  for (int64_t s = 0; s < num_sessions; ++s) {
    patients.push_back(RandomPatient(T, 1100 + static_cast<uint64_t>(s)));
    want.push_back(UninterruptedRisks(model.get(), patients.back(), T, T));
  }
  serve::ServeConfig config;
  config.async = false;
  config.window_capacity = T;
  std::vector<serve::SessionId> ids;
  {
    serve::InferenceService service(model.get(), config);
    for (int64_t s = 0; s < num_sessions; ++s) {
      ids.push_back(service.Admit("bed-" + std::to_string(s)));
    }
    for (int64_t t = 0; t < kill_at; ++t) {
      for (int64_t s = 0; s < num_sessions; ++s) {
        service.Observe(ids[s], RowObservation(patients[s], t));
      }
    }
    health::FaultPlan plan;
    plan.poison_state_at = poisoned;
    FaultPlanGuard guard(plan);
    ASSERT_TRUE(service.SaveSnapshotTo(path));
  }

  serve::InferenceService revived(model.get(), config);
  std::string error;
  ASSERT_TRUE(revived.RestoreSnapshot(path, &error)) << error;
  EXPECT_EQ(revived.stats().quarantined_total, 1);
  ASSERT_EQ(revived.sessions().size(), num_sessions);
  for (int64_t s = 0; s < num_sessions; ++s) {
    const std::shared_ptr<serve::Session> session =
        revived.sessions().Get(ids[s]);
    ASSERT_NE(session, nullptr) << "session " << s;
    if (s == poisoned) {
      // Quarantined: still admitted, but scoring restarts from cold.
      EXPECT_EQ(session->state->steps_seen, 0);
      const serve::StepResult r =
          revived.Observe(ids[s], RowObservation(patients[s], 0));
      EXPECT_TRUE(r.ok);
      EXPECT_EQ(r.step, 1);
    } else {
      EXPECT_EQ(session->state->steps_seen, kill_at);
      for (int64_t t = kill_at; t < T; ++t) {
        ExpectSameRisk(
            revived.Observe(ids[s], RowObservation(patients[s], t)).risk,
            want[static_cast<size_t>(s)][static_cast<size_t>(t)],
            "intact sibling", t);
      }
    }
  }
}

// drop_snapshot@N fails the Nth save without touching the file: the
// previous snapshot stays restorable, and the failure is counted.
TEST(ServeRobustnessTest, DropSnapshotKeepsPreviousFile) {
  const std::string path = TempPath("serve_drop_snapshot.ckpt");
  auto model = baselines::MakeModel("GRU", kFeatures, /*seed=*/3);
  const data::Batch patient = RandomPatient(6, 131);
  serve::ServeConfig config;
  config.async = false;
  config.window_capacity = 8;
  serve::SessionId id;
  {
    serve::InferenceService service(model.get(), config);
    id = service.Admit("bed-1");
    service.Observe(id, RowObservation(patient, 0));
    service.Observe(id, RowObservation(patient, 1));
    ASSERT_TRUE(service.SaveSnapshotTo(path));  // good snapshot at step 2
    service.Observe(id, RowObservation(patient, 2));
    health::FaultPlan plan;
    plan.drop_snapshot_at = 0;
    FaultPlanGuard guard(plan);
    std::string error;
    EXPECT_FALSE(service.SaveSnapshotTo(path, &error));
    EXPECT_NE(error.find("drop_snapshot"), std::string::npos);
    EXPECT_EQ(service.stats().snapshot_failures, 1);
    EXPECT_EQ(service.stats().snapshots_written, 1);
  }
  // The surviving file is the step-2 snapshot.
  serve::InferenceService revived(model.get(), config);
  std::string error;
  ASSERT_TRUE(revived.RestoreSnapshot(path, &error)) << error;
  const std::shared_ptr<serve::Session> session =
      revived.sessions().Get(id);
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->state->steps_seen, 2);
}

// A slow worker changes throughput, never values: with slow_worker armed
// against one of two workers, every risk still matches the serial
// reference and per-session FIFO holds.
TEST(ServeRobustnessTest, SlowWorkerChangesNoValues) {
  const int64_t T = 4;
  const int64_t num_sessions = 6;
  auto model = baselines::MakeModel("GRU", kFeatures, /*seed=*/3);
  std::vector<data::Batch> patients;
  std::vector<std::vector<float>> want;
  for (int64_t s = 0; s < num_sessions; ++s) {
    patients.push_back(RandomPatient(T, 1300 + static_cast<uint64_t>(s)));
    want.push_back(UninterruptedRisks(model.get(), patients.back(), T, 8));
  }
  health::FaultPlan plan;
  plan.slow_worker_index = 1;
  plan.slow_worker_delay_us = 1000;
  FaultPlanGuard guard(plan);
  serve::ServeConfig config;
  config.async = true;
  config.num_workers = 2;
  config.window_capacity = 8;
  serve::InferenceService service(model.get(), config);
  std::vector<serve::SessionId> ids;
  for (int64_t s = 0; s < num_sessions; ++s) ids.push_back(service.Admit());
  std::vector<std::vector<std::future<serve::StepResult>>> futures(
      static_cast<size_t>(num_sessions));
  for (int64_t s = 0; s < num_sessions; ++s) {
    for (int64_t t = 0; t < T; ++t) {
      futures[static_cast<size_t>(s)].push_back(
          service.ObserveAsync(ids[s], RowObservation(patients[s], t)));
    }
  }
  for (int64_t s = 0; s < num_sessions; ++s) {
    for (int64_t t = 0; t < T; ++t) {
      const serve::StepResult r =
          futures[static_cast<size_t>(s)][static_cast<size_t>(t)].get();
      EXPECT_TRUE(r.ok);
      EXPECT_EQ(r.step, t + 1);
      ExpectSameRisk(r.risk,
                     want[static_cast<size_t>(s)][static_cast<size_t>(t)],
                     "slow-worker fleet", t);
    }
  }
}

// -- Capture routing ---------------------------------------------------------

// A per-request CaptureSink rides through the micro-batcher: the tagged
// request scores bitwise-identically to its sink-less twin AND its sink
// holds the attention surfaces; sink-less requests in the same flood stay
// capture-free.
TEST(ServeRobustnessTest, CaptureSinkRoutedThroughBatcher) {
  const int64_t T = 4;
  auto model = baselines::MakeModel("ELDA-Net", kFeatures, /*seed=*/3);
  const data::Batch patient = RandomPatient(T, 141);
  const std::vector<float> want =
      UninterruptedRisks(model.get(), patient, T, T);
  serve::ServeConfig config;
  config.async = true;
  config.window_capacity = T;
  serve::InferenceService service(model.get(), config);
  const serve::SessionId plain = service.Admit();
  const serve::SessionId tapped = service.Admit();
  nn::CaptureSink sink;
  for (int64_t t = 0; t < T; ++t) {
    std::future<serve::StepResult> a =
        service.ObserveAsync(plain, RowObservation(patient, t));
    std::future<serve::StepResult> b =
        service.ObserveAsync(tapped, RowObservation(patient, t), &sink);
    ExpectSameRisk(a.get().risk, want[static_cast<size_t>(t)], "plain", t);
    ExpectSameRisk(b.get().risk, want[static_cast<size_t>(t)], "tapped", t);
  }
  EXPECT_TRUE(sink.Contains("feature_attention") ||
              sink.Contains("time_attention"))
      << "capture sink never received an attention surface";
}

// -- Periodic snapshots ------------------------------------------------------

// The maintenance thread writes snapshots on its period; stats report the
// count and a bounded age.
TEST(ServeRobustnessTest, PeriodicSnapshotThreadWrites) {
  const std::string path = TempPath("serve_periodic.ckpt");
  std::remove(path.c_str());
  auto model = baselines::MakeModel("GRU", kFeatures, /*seed=*/3);
  const data::Batch patient = RandomPatient(4, 151);
  serve::ServeConfig config;
  config.async = true;
  config.snapshot_path = path;
  config.snapshot_every_ms = 20;
  serve::ServiceStats stats;
  serve::SessionId id;
  {
    serve::InferenceService service(model.get(), config);
    id = service.Admit("bed-1");
    for (int64_t t = 0; t < 4; ++t) {
      service.Observe(id, RowObservation(patient, t));
    }
    // Give the maintenance thread a few periods.
    for (int wait = 0; wait < 100; ++wait) {
      if (service.stats().snapshots_written > 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    stats = service.stats();
  }
  EXPECT_GE(stats.snapshots_written, 1);
  EXPECT_GE(stats.snapshot_age_ms, 0.0);
  // And the file on disk restores. The revived service gets no periodic
  // snapshots of its own, so it cannot overwrite the file before reading.
  serve::ServeConfig revive_config = config;
  revive_config.snapshot_every_ms = 0;
  serve::InferenceService revived(model.get(), revive_config);
  std::string error;
  ASSERT_TRUE(revived.RestoreSnapshot(path, &error)) << error;
  EXPECT_NE(revived.sessions().Get(id), nullptr);
}

}  // namespace
}  // namespace elda
