// The serving path's contract: advancing resident per-session state one
// observation at a time through StepForward is bitwise identical to
// replaying the full window through Forward — for every registry model,
// whether it implements an incremental step or rides the rolling-window
// replay fallback — and the micro-batcher's coalesced scoring matches
// serial scoring exactly. Also pins the session lifecycle, the streaming
// imputer's equivalence to the batch pipeline, and the nn-level cell-step
// identities the incremental paths are built on.

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "autograd/ops.h"
#include "baselines/baselines.h"
#include "data/pipeline.h"
#include "gtest/gtest.h"
#include "nn/recurrent_sweep.h"
#include "serve/service.h"
#include "serve/streaming_imputer.h"
#include "synth/simulator.h"
#include "train/trainer.h"

namespace elda {
namespace {

constexpr int64_t kFeatures = 5;

// A [1, T, C] single-patient batch with random observations. Masks are
// random, so features routinely first appear mid-stay — exercising
// ELDA-Net's never-observed-mask replay rule.
data::Batch RandomPatient(int64_t steps, uint64_t seed) {
  Rng rng(seed);
  data::Batch b;
  b.x = Tensor::Normal({1, steps, kFeatures}, 0.0f, 1.0f, &rng);
  b.mask = Tensor({1, steps, kFeatures});
  for (int64_t i = 0; i < b.mask.size(); ++i) {
    b.mask[i] = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
  }
  b.delta = Tensor({1, steps, kFeatures});
  for (int64_t i = 0; i < b.delta.size(); ++i) {
    b.delta[i] = static_cast<float>(rng.Uniform() * 3.0);
  }
  b.y = Tensor::Zeros({1});
  return b;
}

// The first `steps` timesteps of a [1, T, C] batch — the window a batch
// caller would score after the streaming caller's step `steps - 1`.
data::Batch Prefix(const data::Batch& full, int64_t steps) {
  data::Batch b;
  b.x = Tensor::Empty({1, steps, kFeatures});
  b.mask = Tensor::Empty({1, steps, kFeatures});
  b.delta = Tensor::Empty({1, steps, kFeatures});
  b.y = Tensor::Zeros({1});
  std::memcpy(b.x.data(), full.x.data(), sizeof(float) * steps * kFeatures);
  std::memcpy(b.mask.data(), full.mask.data(),
              sizeof(float) * steps * kFeatures);
  std::memcpy(b.delta.data(), full.delta.data(),
              sizeof(float) * steps * kFeatures);
  return b;
}

// Timestep `t` of each patient, stacked into one [n, C] step batch.
train::StepBatch StepAt(const std::vector<data::Batch>& patients, int64_t t) {
  const int64_t n = static_cast<int64_t>(patients.size());
  train::StepBatch sb;
  sb.x = Tensor::Empty({n, kFeatures});
  sb.mask = Tensor::Empty({n, kFeatures});
  sb.delta = Tensor::Empty({n, kFeatures});
  for (int64_t b = 0; b < n; ++b) {
    std::memcpy(sb.x.data() + b * kFeatures,
                patients[b].x.data() + t * kFeatures,
                sizeof(float) * kFeatures);
    std::memcpy(sb.mask.data() + b * kFeatures,
                patients[b].mask.data() + t * kFeatures,
                sizeof(float) * kFeatures);
    std::memcpy(sb.delta.data() + b * kFeatures,
                patients[b].delta.data() + t * kFeatures,
                sizeof(float) * kFeatures);
  }
  return sb;
}

std::vector<std::string> AllRegistryNames() {
  std::vector<std::string> names = baselines::AllModelNames();
  names.push_back("ELDA-Net-Fbi*");
  names.push_back("ELDA-Net-Ffm*");
  return names;
}

serve::Observation RowObservation(const data::Batch& patient, int64_t t) {
  serve::Observation obs;
  obs.x.assign(patient.x.data() + t * kFeatures,
               patient.x.data() + (t + 1) * kFeatures);
  obs.mask.assign(patient.mask.data() + t * kFeatures,
                  patient.mask.data() + (t + 1) * kFeatures);
  obs.delta.assign(patient.delta.data() + t * kFeatures,
                   patient.delta.data() + (t + 1) * kFeatures);
  return obs;
}

// -- Incremental vs replay ---------------------------------------------------

// The core acceptance identity: for every registry model, the streamed
// logit after observation t equals — bitwise — Forward over the t+1-step
// prefix window. Models below their minimum scorable window must report
// NaN while still advancing state.
TEST(ServeTest, IncrementalMatchesReplayBitwise) {
  const int64_t T = 7;
  for (const std::string& name : AllRegistryNames()) {
    SCOPED_TRACE(name);
    auto model = baselines::MakeModel(name, kFeatures, /*seed=*/3);
    const int64_t min_steps = model->min_steps_to_score();
    for (uint64_t patient_seed : {11u, 29u}) {
      SCOPED_TRACE(patient_seed);
      const data::Batch full = RandomPatient(T, patient_seed);
      auto state = model->MakeStepState(/*window_capacity=*/T);
      for (int64_t t = 0; t < T; ++t) {
        ag::NoGradScope no_grad;
        const train::StepBatch sb = StepAt({full}, t);
        const Tensor logits =
            model->StepForward(sb, {state.get()}, nullptr).value();
        ASSERT_EQ(logits.size(), 1);
        ASSERT_EQ(state->steps_seen, t + 1);
        if (t + 1 < min_steps) {
          EXPECT_TRUE(std::isnan(logits[0]))
              << "step " << t << " scored below the minimum window";
          continue;
        }
        const Tensor replay = model->Forward(Prefix(full, t + 1)).value();
        EXPECT_EQ(logits[0], replay[0]) << "step " << t;
      }
    }
  }
}

// Coalescing heterogeneous sessions into one StepForward call must not
// change any value: each batch row is computed independently (the same
// strict-k contract the recurrence engine relies on).
TEST(ServeTest, BatchedStepsMatchSingleSession) {
  const int64_t T = 5;
  const int64_t n = 6;
  for (const std::string& name :
       {std::string("GRU"), std::string("GRU-D"), std::string("StageNet"),
        std::string("ConCare"), std::string("ELDA-Net"),
        std::string("RETAIN")}) {
    SCOPED_TRACE(name);
    auto model = baselines::MakeModel(name, kFeatures, /*seed=*/5);
    std::vector<data::Batch> patients;
    for (int64_t b = 0; b < n; ++b) {
      patients.push_back(RandomPatient(T, 100 + static_cast<uint64_t>(b)));
    }
    std::vector<std::unique_ptr<nn::StepState>> batched, single;
    for (int64_t b = 0; b < n; ++b) {
      batched.push_back(model->MakeStepState(T));
      single.push_back(model->MakeStepState(T));
    }
    for (int64_t t = 0; t < T; ++t) {
      ag::NoGradScope no_grad;
      std::vector<nn::StepState*> states;
      for (auto& s : batched) states.push_back(s.get());
      const Tensor together =
          model->StepForward(StepAt(patients, t), states, nullptr).value();
      for (int64_t b = 0; b < n; ++b) {
        const Tensor alone =
            model->StepForward(StepAt({patients[b]}, t), {single[b].get()},
                               nullptr)
                .value();
        if (std::isnan(alone[0])) {
          EXPECT_TRUE(std::isnan(together[b])) << name << " step " << t;
        } else {
          EXPECT_EQ(together[b], alone[0])
              << name << " session " << b << " step " << t;
        }
      }
    }
  }
}

// Once the rolling window is full, the fallback keeps scoring on the
// retained suffix — state advances and the logit matches Forward over the
// window a fresh state fed the same suffix would hold.
TEST(ServeTest, ReplayFallbackTruncatesToWindowCapacity) {
  const int64_t T = 9;
  const int64_t window = 4;
  auto model = baselines::MakeModel("RETAIN", kFeatures, /*seed=*/3);
  const data::Batch full = RandomPatient(T, 7);
  auto state = model->MakeStepState(window);
  ag::NoGradScope no_grad;
  Tensor streamed;
  for (int64_t t = 0; t < T; ++t) {
    streamed = model->StepForward(StepAt({full}, t), {state.get()}, nullptr)
                   .value();
  }
  EXPECT_EQ(state->steps_seen, T);
  // Reference: a fresh state fed only the last `window` observations.
  auto suffix_state = model->MakeStepState(window);
  Tensor suffix;
  for (int64_t t = T - window; t < T; ++t) {
    suffix = model->StepForward(StepAt({full}, t), {suffix_state.get()},
                                nullptr)
                 .value();
  }
  EXPECT_EQ(streamed[0], suffix[0]);
}

// -- nn-level cell-step identities ------------------------------------------

// One PrecomputeInput+Step per timestep (the serving path's inner loop)
// reproduces the hoisted sweep bitwise — GRU.
TEST(ServeTest, GruCellStepMatchesSweep) {
  Rng rng(13);
  const int64_t B = 3, T = 6, C = 4, H = 5;
  nn::GruCell cell(C, H, &rng);
  const Tensor x = Tensor::Normal({B, T, C}, 0.0f, 1.0f, &rng);
  ag::NoGradScope no_grad;
  const nn::SweepResult sweep = nn::GruSweep(cell, ag::Constant(x));
  ag::Variable h = ag::Constant(Tensor::Zeros({B, H}));
  for (int64_t t = 0; t < T; ++t) {
    Tensor xt = Tensor::Empty({B, C});
    for (int64_t b = 0; b < B; ++b) {
      std::memcpy(xt.data() + b * C, x.data() + (b * T + t) * C,
                  sizeof(float) * C);
    }
    h = cell.Step(cell.PrecomputeInput(ag::Constant(xt)), h);
    const Tensor& want = sweep.steps[t].value();
    const Tensor& got = h.value();
    ASSERT_EQ(got.size(), want.size());
    for (int64_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got.data()[i], want.data()[i]) << "t=" << t << " i=" << i;
    }
  }
}

// Same identity for the LSTM's packed [2, B, H] state (StageNet's
// backbone).
TEST(ServeTest, LstmCellStepMatchesSweep) {
  Rng rng(17);
  const int64_t B = 3, T = 6, C = 4, H = 5;
  nn::LstmCell cell(C, H, &rng);
  const Tensor x = Tensor::Normal({B, T, C}, 0.0f, 1.0f, &rng);
  ag::NoGradScope no_grad;
  const nn::SweepResult sweep = nn::LstmSweep(cell, ag::Constant(x));
  ag::Variable packed = ag::Constant(Tensor::Zeros({2, B, H}));
  for (int64_t t = 0; t < T; ++t) {
    Tensor xt = Tensor::Empty({B, C});
    for (int64_t b = 0; b < B; ++b) {
      std::memcpy(xt.data() + b * C, x.data() + (b * T + t) * C,
                  sizeof(float) * C);
    }
    packed = cell.Step(cell.PrecomputeInput(ag::Constant(xt)), packed);
    // sweep.steps[t] is the h half; compare against block 0 of the packed
    // state.
    const Tensor& want = sweep.steps[t].value();
    const float* got = packed.value().data();  // h block first
    ASSERT_EQ(want.size(), B * H);
    for (int64_t i = 0; i < B * H; ++i) {
      ASSERT_EQ(got[i], want.data()[i]) << "t=" << t << " i=" << i;
    }
  }
}

// -- Session lifecycle -------------------------------------------------------

TEST(ServeTest, SessionLifecycleAndCapacity) {
  auto model = baselines::MakeModel("GRU", kFeatures, /*seed=*/3);
  serve::ServeConfig config;
  config.max_sessions = 2;
  config.async = false;
  serve::InferenceService service(model.get(), config);

  const serve::SessionId a = service.Admit("bed-12");
  const serve::SessionId b = service.Admit("bed-31");
  ASSERT_NE(a, serve::kInvalidSession);
  ASSERT_NE(b, serve::kInvalidSession);
  EXPECT_NE(a, b);
  // At capacity: the third admission is refused, not queued.
  EXPECT_EQ(service.Admit("bed-99"), serve::kInvalidSession);
  EXPECT_EQ(service.sessions().size(), 2);
  EXPECT_EQ(service.sessions().high_water(), 2);

  const data::Batch patient = RandomPatient(3, 21);
  const serve::StepResult r = service.Observe(a, RowObservation(patient, 0));
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.step, 1);

  // Discharge frees a slot; the discharged id stops scoring.
  EXPECT_TRUE(service.Discharge(a));
  EXPECT_FALSE(service.Discharge(a));
  EXPECT_EQ(service.sessions().size(), 1);
  const serve::StepResult gone =
      service.Observe(a, RowObservation(patient, 1));
  EXPECT_FALSE(gone.ok);
  EXPECT_NE(service.Admit("bed-99"), serve::kInvalidSession);
  EXPECT_EQ(service.sessions().admitted_total(), 3);
  EXPECT_EQ(service.sessions().discharged_total(), 1);
}

TEST(ServeTest, MinimumWindowGatesScoringButAdvancesState) {
  auto model = baselines::MakeModel("StageNet", kFeatures, /*seed=*/3);
  const int64_t min_steps = model->min_steps_to_score();
  ASSERT_GT(min_steps, 1);
  serve::ServeConfig config;
  config.async = false;
  serve::InferenceService service(model.get(), config);
  const serve::SessionId id = service.Admit();
  const data::Batch patient = RandomPatient(min_steps + 2, 33);
  for (int64_t t = 0; t < min_steps + 2; ++t) {
    const serve::StepResult r = service.Observe(id, RowObservation(patient, t));
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.step, t + 1);
    if (t + 1 < min_steps) {
      EXPECT_FALSE(r.scored);
      EXPECT_TRUE(std::isnan(r.risk));
    } else {
      EXPECT_TRUE(r.scored);
      EXPECT_FALSE(std::isnan(r.risk));
    }
  }
}

// -- Micro-batcher -----------------------------------------------------------

// Concurrent clients streaming disjoint sessions through the async
// micro-batcher produce exactly the risks the sync (inline, serial)
// service produces for the same streams. Runs under the "serve"/"par"
// labels, so the ThreadSanitizer suite covers the batcher's queue.
TEST(ServeTest, ConcurrentMicroBatcherMatchesSerialScoring) {
  const int64_t T = 5;
  const int64_t num_sessions = 8;
  const int64_t num_clients = 4;
  auto model = baselines::MakeModel("GRU", kFeatures, /*seed=*/3);
  std::vector<data::Batch> patients;
  for (int64_t s = 0; s < num_sessions; ++s) {
    patients.push_back(RandomPatient(T, 500 + static_cast<uint64_t>(s)));
  }

  // Serial reference: sync service, one stream after another.
  std::vector<std::vector<float>> want(num_sessions);
  {
    serve::ServeConfig config;
    config.async = false;
    serve::InferenceService service(model.get(), config);
    for (int64_t s = 0; s < num_sessions; ++s) {
      const serve::SessionId id = service.Admit();
      for (int64_t t = 0; t < T; ++t) {
        want[s].push_back(service.Observe(id, RowObservation(patients[s], t)).risk);
      }
    }
  }

  // Concurrent run: 4 clients, each owning 2 sessions, observations
  // submitted in per-session order but racing across sessions.
  std::vector<std::vector<float>> got(num_sessions,
                                      std::vector<float>(T, 0.0f));
  {
    serve::ServeConfig config;
    config.async = true;
    config.infer.batch_size = num_sessions;
    serve::InferenceService service(model.get(), config);
    std::vector<serve::SessionId> ids;
    for (int64_t s = 0; s < num_sessions; ++s) ids.push_back(service.Admit());
    std::vector<std::thread> clients;
    for (int64_t w = 0; w < num_clients; ++w) {
      clients.emplace_back([&, w] {
        for (int64_t s = w; s < num_sessions; s += num_clients) {
          for (int64_t t = 0; t < T; ++t) {
            got[s][t] =
                service.Observe(ids[s], RowObservation(patients[s], t)).risk;
          }
        }
      });
    }
    for (std::thread& c : clients) c.join();
    const serve::MicroBatcher::Stats stats = service.batcher_stats();
    EXPECT_EQ(stats.observations, num_sessions * T);
  }

  for (int64_t s = 0; s < num_sessions; ++s) {
    for (int64_t t = 0; t < T; ++t) {
      EXPECT_EQ(got[s][t], want[s][t]) << "session " << s << " step " << t;
    }
  }
}

// Same-session requests already in the queue defer rather than co-batch,
// preserving per-session FIFO: a burst of async submissions for one
// session resolves to exactly the serial step sequence.
TEST(ServeTest, SameSessionBurstKeepsFifoOrder) {
  const int64_t T = 6;
  auto model = baselines::MakeModel("GRU", kFeatures, /*seed=*/3);
  const data::Batch patient = RandomPatient(T, 77);

  std::vector<float> want;
  {
    serve::ServeConfig config;
    config.async = false;
    serve::InferenceService service(model.get(), config);
    const serve::SessionId id = service.Admit();
    for (int64_t t = 0; t < T; ++t) {
      want.push_back(service.Observe(id, RowObservation(patient, t)).risk);
    }
  }

  serve::ServeConfig config;
  config.async = true;
  config.infer.batch_size = T;  // the whole burst fits one flush window
  serve::InferenceService service(model.get(), config);
  const serve::SessionId id = service.Admit();
  std::vector<std::future<serve::StepResult>> futures;
  for (int64_t t = 0; t < T; ++t) {
    futures.push_back(service.ObserveAsync(id, RowObservation(patient, t)));
  }
  for (int64_t t = 0; t < T; ++t) {
    const serve::StepResult r = futures[static_cast<size_t>(t)].get();
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.step, t + 1);
    EXPECT_EQ(r.risk, want[static_cast<size_t>(t)]) << "step " << t;
  }
}

// -- Streaming imputer and end-to-end equivalence ---------------------------

// StreamingImputer is the batch pipeline run one row at a time: on a real
// (synthetic) cohort its rows reproduce PrepareDataset bitwise.
TEST(ServeTest, StreamingImputerMatchesBatchPipeline) {
  synth::CohortConfig cohort_config = synth::SynthPhysioNet2012();
  cohort_config.num_admissions = 6;
  const data::EmrDataset cohort = synth::GenerateCohort(cohort_config);
  std::vector<int64_t> all_indices;
  for (int64_t i = 0; i < cohort.size(); ++i) all_indices.push_back(i);
  data::Standardizer standardizer;
  standardizer.Fit(cohort, all_indices);
  const std::vector<data::PreparedSample> prepared =
      data::PrepareDataset(cohort, standardizer);

  for (int64_t i = 0; i < cohort.size(); ++i) {
    SCOPED_TRACE(i);
    const data::EmrSample& raw = cohort.sample(i);
    const data::PreparedSample& want = prepared[static_cast<size_t>(i)];
    serve::StreamingImputer imputer(&standardizer, raw.num_features);
    for (int64_t t = 0; t < raw.num_steps; ++t) {
      const serve::Observation row = imputer.Next(
          raw.values.data() + t * raw.num_features,
          raw.observed.data() + t * raw.num_features);
      for (int64_t c = 0; c < raw.num_features; ++c) {
        const int64_t at = t * raw.num_features + c;
        ASSERT_EQ(row.x[static_cast<size_t>(c)], want.x.data()[at])
            << "t=" << t << " c=" << c;
        ASSERT_EQ(row.mask[static_cast<size_t>(c)], want.mask.data()[at])
            << "t=" << t << " c=" << c;
        ASSERT_EQ(row.delta[static_cast<size_t>(c)], want.delta.data()[at])
            << "t=" << t << " c=" << c;
      }
    }
    EXPECT_EQ(imputer.steps(), raw.num_steps);
  }
}

// Closing the loop: streaming a prepared admission through the service
// lands on exactly the risk Trainer::Predict reports for the same sample —
// the step path, the replay path, and the batch path share kernels
// end-to-end.
TEST(ServeTest, FinalStreamedRiskMatchesTrainerPredict) {
  synth::CohortConfig cohort_config = synth::SynthPhysioNet2012();
  cohort_config.num_admissions = 4;
  const data::EmrDataset cohort = synth::GenerateCohort(cohort_config);
  std::vector<int64_t> all_indices;
  for (int64_t i = 0; i < cohort.size(); ++i) all_indices.push_back(i);
  data::Standardizer standardizer;
  standardizer.Fit(cohort, all_indices);
  const std::vector<data::PreparedSample> prepared =
      data::PrepareDataset(cohort, standardizer);

  for (const std::string& name : {std::string("GRU"), std::string("ELDA-Net"),
                                  std::string("RETAIN")}) {
    SCOPED_TRACE(name);
    auto model = baselines::MakeModel(name, cohort.num_features(), /*seed=*/3);
    const train::PredictResult want = train::Trainer::Predict(
        model.get(), prepared, all_indices, data::Task::kMortality);

    serve::ServeConfig config;
    config.async = false;
    // Window at least as long as any stay, so nothing truncates.
    config.window_capacity = 256;
    serve::InferenceService service(model.get(), config);
    for (int64_t i = 0; i < cohort.size(); ++i) {
      const data::PreparedSample& sample = prepared[static_cast<size_t>(i)];
      const int64_t T = sample.x.shape(0);
      const int64_t C = sample.x.shape(1);
      const serve::SessionId id = service.Admit();
      serve::StepResult last;
      for (int64_t t = 0; t < T; ++t) {
        serve::Observation obs;
        obs.x.assign(sample.x.data() + t * C, sample.x.data() + (t + 1) * C);
        obs.mask.assign(sample.mask.data() + t * C,
                        sample.mask.data() + (t + 1) * C);
        obs.delta.assign(sample.delta.data() + t * C,
                         sample.delta.data() + (t + 1) * C);
        last = service.Observe(id, std::move(obs));
      }
      ASSERT_TRUE(last.ok);
      ASSERT_TRUE(last.scored);
      EXPECT_EQ(last.risk, want.scores[static_cast<size_t>(i)])
          << "admission " << i;
      service.Discharge(id);
    }
  }
}

}  // namespace
}  // namespace elda
