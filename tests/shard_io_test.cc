// Out-of-core data substrate tests: shard round-trips, corruption
// containment, and the ShardedLoader's bitwise determinism contracts
// (prefetch on/off, any thread count, resume-from-cursor, streamed
// training).

#include "data/shard_io.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "data/pipeline.h"
#include "data/sharded_loader.h"
#include "gtest/gtest.h"
#include "nn/gru.h"
#include "nn/linear.h"
#include "par/par.h"
#include "synth/simulator.h"
#include "train/trainer.h"

namespace elda {
namespace data {
namespace {

synth::CohortConfig RaggedConfig(int64_t admissions, uint64_t seed = 91) {
  synth::CohortConfig config = synth::SynthPhysioNet2012();
  config.num_admissions = admissions;
  config.variable_length = true;
  config.max_steps = 60;  // keep the test grids small
  config.seed = seed;
  return config;
}

std::string TempPrefix(const std::string& tag) {
  return testing::TempDir() + "/" + tag;
}

void ExpectSamplesBitwiseEqual(const EmrSample& a, const EmrSample& b) {
  ASSERT_EQ(a.num_steps, b.num_steps);
  ASSERT_EQ(a.num_features, b.num_features);
  EXPECT_EQ(a.length, b.length);
  EXPECT_EQ(a.patient_id, b.patient_id);
  EXPECT_EQ(a.condition, b.condition);
  EXPECT_EQ(std::memcmp(&a.mortality_label, &b.mortality_label,
                        sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(&a.los_gt7_label, &b.los_gt7_label, sizeof(float)),
            0);
  ASSERT_EQ(a.values.size(), b.values.size());
  EXPECT_EQ(std::memcmp(a.values.data(), b.values.data(),
                        a.values.size() * sizeof(float)),
            0);
  EXPECT_EQ(a.observed, b.observed);
}

int64_t FileSize(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return static_cast<int64_t>(in.tellg());
}

void CorruptByteAt(const std::string& path, int64_t offset_from_end) {
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  file.seekg(0, std::ios::end);
  const int64_t size = static_cast<int64_t>(file.tellg());
  file.seekg(size - offset_from_end);
  char byte = 0;
  file.read(&byte, 1);
  byte ^= 0x5A;
  file.seekp(size - offset_from_end);
  file.write(&byte, 1);
}

void TruncateFile(const std::string& path, int64_t new_size) {
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes(new_size);
  in.read(bytes.data(), new_size);
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), new_size);
}

TEST(ShardIoTest, RoundTripIsBitwise) {
  const EmrDataset cohort = synth::GenerateCohort(RaggedConfig(24));
  const std::string path = TempPrefix("roundtrip") + "-00000.elds";
  {
    ShardWriter writer(path, cohort.feature_names());
    for (int64_t i = 0; i < cohort.size(); ++i) writer.Append(cohort.sample(i));
    ASSERT_TRUE(writer.Close());
    EXPECT_EQ(writer.num_records(), cohort.size());
  }
  ShardReader reader(path);
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_FALSE(reader.tail_truncated());
  ASSERT_EQ(reader.size(), cohort.size());
  EXPECT_EQ(reader.feature_names(), cohort.feature_names());
  for (int64_t i = 0; i < cohort.size(); ++i) {
    EmrSample sample;
    ASSERT_TRUE(reader.Read(i, &sample)) << i;
    ExpectSamplesBitwiseEqual(cohort.sample(i), sample);
    EXPECT_EQ(reader.PeekLength(i), cohort.sample(i).length);
  }
  EXPECT_EQ(reader.num_quarantined(), 0);
}

TEST(ShardIoTest, ShardedGenerationMatchesInRamGenerator) {
  const synth::CohortConfig config = RaggedConfig(40);
  const EmrDataset in_ram = synth::GenerateCohort(config);
  const synth::ShardedCohortInfo info = synth::GenerateCohortToShards(
      config, TempPrefix("gen_match"), /*samples_per_shard=*/16);
  ASSERT_EQ(info.num_samples, in_ram.size());
  EXPECT_EQ(static_cast<int64_t>(info.paths.size()), 3);
  EXPECT_EQ(info.length_stats.count, in_ram.size());

  int64_t next = 0;
  for (const std::string& path : info.paths) {
    ShardReader reader(path);
    ASSERT_TRUE(reader.ok()) << reader.error();
    for (int64_t i = 0; i < reader.size(); ++i, ++next) {
      EmrSample sample;
      ASSERT_TRUE(reader.Read(i, &sample));
      ExpectSamplesBitwiseEqual(in_ram.sample(next), sample);
    }
  }
  EXPECT_EQ(next, in_ram.size());
  EXPECT_EQ(ListShards(TempPrefix("gen_match")).size(), info.paths.size());
}

TEST(ShardIoTest, FixedLengthConfigRoundTripsUniform) {
  synth::CohortConfig config = RaggedConfig(10);
  config.variable_length = false;  // the paper's dense 48 h grid
  const synth::ShardedCohortInfo info = synth::GenerateCohortToShards(
      config, TempPrefix("uniform"), /*samples_per_shard=*/64);
  ShardReader reader(info.paths[0]);
  ASSERT_TRUE(reader.ok());
  for (int64_t i = 0; i < reader.size(); ++i) {
    int64_t length = 0, steps = 0;
    ASSERT_TRUE(reader.PeekShape(i, &length, &steps));
    EXPECT_EQ(length, config.num_steps);
    EXPECT_EQ(steps, config.num_steps);
  }
}

TEST(ShardIoTest, CorruptRecordIsQuarantinedNotFatal) {
  const EmrDataset cohort = synth::GenerateCohort(RaggedConfig(6));
  const std::string path = TempPrefix("corrupt") + "-00000.elds";
  {
    ShardWriter writer(path, cohort.feature_names());
    for (int64_t i = 0; i < cohort.size(); ++i) writer.Append(cohort.sample(i));
    ASSERT_TRUE(writer.Close());
  }
  // The file ends with the last record's payload + 4-byte CRC; flipping a
  // payload byte (5 from the end) breaks that record's CRC only.
  CorruptByteAt(path, 5);

  ShardReader reader(path);
  ASSERT_TRUE(reader.ok()) << reader.error();
  ASSERT_EQ(reader.size(), cohort.size());  // frame chain is intact
  EmrSample sample;
  for (int64_t i = 0; i + 1 < cohort.size(); ++i) {
    EXPECT_TRUE(reader.Read(i, &sample)) << i;
  }
  EXPECT_FALSE(reader.Read(cohort.size() - 1, &sample));
  EXPECT_EQ(reader.num_quarantined(), 1);
}

TEST(ShardIoTest, TornTailKeepsValidPrefixReadable) {
  const EmrDataset cohort = synth::GenerateCohort(RaggedConfig(6));
  const std::string path = TempPrefix("torn") + "-00000.elds";
  {
    ShardWriter writer(path, cohort.feature_names());
    for (int64_t i = 0; i < cohort.size(); ++i) writer.Append(cohort.sample(i));
    ASSERT_TRUE(writer.Close());
  }
  // Kill the "writer" mid-record: cut into the last record's trailing CRC.
  TruncateFile(path, FileSize(path) - 6);

  ShardReader reader(path);
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_TRUE(reader.tail_truncated());
  ASSERT_EQ(reader.size(), cohort.size() - 1);
  for (int64_t i = 0; i < reader.size(); ++i) {
    EmrSample sample;
    ASSERT_TRUE(reader.Read(i, &sample)) << i;
    ExpectSamplesBitwiseEqual(cohort.sample(i), sample);
  }
}

// ---- ShardedLoader ---------------------------------------------------------

struct CapturedBatch {
  Tensor x, mask, delta, y, step_mask;
  std::vector<int64_t> lengths;
  std::vector<int64_t> sample_indices;
};

std::vector<CapturedBatch> DrainEpoch(BatchSource* source,
                                      bool start_epoch = true) {
  if (start_epoch) source->StartEpoch();
  std::vector<CapturedBatch> captured;
  Batch batch;
  while (source->Next(&batch)) {
    CapturedBatch c;
    c.x = batch.x.Clone();
    c.mask = batch.mask.Clone();
    c.delta = batch.delta.Clone();
    c.y = batch.y.Clone();
    if (batch.step_mask.size() > 0) c.step_mask = batch.step_mask.Clone();
    c.lengths = batch.lengths;
    c.sample_indices = batch.sample_indices;
    captured.push_back(std::move(c));
  }
  return captured;
}

void ExpectTensorsBitwiseEqual(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  if (a.size() == 0) return;  // both empty (e.g. uniform-batch step_mask)
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
}

void ExpectStreamsEqual(const std::vector<CapturedBatch>& a,
                        const std::vector<CapturedBatch>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ExpectTensorsBitwiseEqual(a[i].x, b[i].x);
    ExpectTensorsBitwiseEqual(a[i].mask, b[i].mask);
    ExpectTensorsBitwiseEqual(a[i].delta, b[i].delta);
    ExpectTensorsBitwiseEqual(a[i].y, b[i].y);
    ExpectTensorsBitwiseEqual(a[i].step_mask, b[i].step_mask);
    EXPECT_EQ(a[i].lengths, b[i].lengths) << "batch " << i;
    EXPECT_EQ(a[i].sample_indices, b[i].sample_indices) << "batch " << i;
  }
}

struct LoaderFixture {
  synth::ShardedCohortInfo info;
  Standardizer standardizer;

  explicit LoaderFixture(const std::string& tag, int64_t admissions = 90) {
    info = synth::GenerateCohortToShards(RaggedConfig(admissions),
                                         TempPrefix(tag),
                                         /*samples_per_shard=*/32);
    standardizer = FitStandardizerFromShards(info.paths);
  }

  ShardedLoader MakeLoader(ShardedLoaderOptions options = {}) const {
    options.batch_size = 16;
    return ShardedLoader(info.paths, &standardizer, options);
  }
};

TEST(ShardedLoaderTest, BatchStreamIsIdenticalAcrossPrefetchAndThreads) {
  const LoaderFixture fixture("determinism");
  std::vector<CapturedBatch> reference;
  {
    ShardedLoaderOptions options;
    options.prefetch = false;
    ShardedLoader loader = fixture.MakeLoader(options);
    reference = DrainEpoch(&loader);
    ASSERT_GT(reference.size(), 1u);
  }
  for (int64_t threads : {1, 2, 8}) {
    par::ScopedNumThreads scoped(threads);
    ShardedLoader loader = fixture.MakeLoader();  // prefetch on
    ExpectStreamsEqual(reference, DrainEpoch(&loader));
  }
}

TEST(ShardedLoaderTest, SecondEpochReshufflesButStaysDeterministic) {
  const LoaderFixture fixture("epochs");
  ShardedLoader a = fixture.MakeLoader();
  const auto a1 = DrainEpoch(&a);
  const auto a2 = DrainEpoch(&a);
  std::vector<int64_t> order1, order2;
  for (const auto& batch : a1)
    order1.insert(order1.end(), batch.sample_indices.begin(),
                  batch.sample_indices.end());
  for (const auto& batch : a2)
    order2.insert(order2.end(), batch.sample_indices.begin(),
                  batch.sample_indices.end());
  EXPECT_NE(order1, order2);  // reshuffled
  // A fresh loader replays both epochs bit-for-bit.
  ShardedLoader b = fixture.MakeLoader();
  ExpectStreamsEqual(a1, DrainEpoch(&b));
  ExpectStreamsEqual(a2, DrainEpoch(&b));
}

TEST(ShardedLoaderTest, ResumeFromExportedCursorIsBitwise) {
  const LoaderFixture fixture("resume");
  ShardedLoader a = fixture.MakeLoader();
  a.StartEpoch();
  Batch batch;
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(a.Next(&batch));
  const std::string state = a.ExportState();
  const auto rest_a = DrainEpoch(&a, /*start_epoch=*/false);
  const auto next_epoch_a = DrainEpoch(&a);

  ShardedLoader b = fixture.MakeLoader();
  ASSERT_TRUE(b.RestoreState(state));
  const auto rest_b = DrainEpoch(&b, /*start_epoch=*/false);
  ExpectStreamsEqual(rest_a, rest_b);
  // The epoch after the resume point also matches (the rng snapshot
  // carries the future shuffles).
  ExpectStreamsEqual(next_epoch_a, DrainEpoch(&b));
}

TEST(ShardedLoaderTest, RestoreRejectsGarbage) {
  const LoaderFixture fixture("garbage", /*admissions=*/40);
  ShardedLoader loader = fixture.MakeLoader();
  EXPECT_FALSE(loader.RestoreState("not a loader state"));
  EXPECT_FALSE(loader.RestoreState(""));
  // Still usable after the rejected restores.
  EXPECT_FALSE(DrainEpoch(&loader).empty());
}

TEST(ShardedLoaderTest, SplitFilterPartitionsTheCohort) {
  const LoaderFixture fixture("split");
  std::vector<int64_t> seen;
  int64_t total = 0;
  const std::vector<std::vector<int64_t>> keeps = {
      {0, 1, 2, 3, 4, 5, 6, 7}, {8}, {9}};
  for (const auto& keep : keeps) {
    ShardedLoaderOptions options;
    options.split_mod = 10;
    options.split_keep = keep;
    ShardedLoader loader = fixture.MakeLoader(options);
    total += loader.num_records();
    for (const auto& batch : DrainEpoch(&loader)) {
      seen.insert(seen.end(), batch.sample_indices.begin(),
                  batch.sample_indices.end());
    }
  }
  EXPECT_EQ(total, fixture.info.num_samples);
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(static_cast<int64_t>(seen.size()), fixture.info.num_samples);
  for (int64_t i = 0; i < static_cast<int64_t>(seen.size()); ++i) {
    EXPECT_EQ(seen[i], i);  // every record exactly once across the splits
  }
}

TEST(ShardedLoaderTest, StandardizerFromShardsMatchesInRamFit) {
  const synth::CohortConfig config = RaggedConfig(60);
  const EmrDataset cohort = synth::GenerateCohort(config);
  const synth::ShardedCohortInfo info = synth::GenerateCohortToShards(
      config, TempPrefix("standardizer"), /*samples_per_shard=*/32);

  std::vector<int64_t> all(cohort.size());
  for (int64_t i = 0; i < cohort.size(); ++i) all[i] = i;
  Standardizer in_ram;
  in_ram.Fit(cohort, all);
  const Standardizer streamed = FitStandardizerFromShards(info.paths);
  ASSERT_EQ(in_ram.means().size(), streamed.means().size());
  for (size_t c = 0; c < in_ram.means().size(); ++c) {
    EXPECT_EQ(in_ram.means()[c], streamed.means()[c]) << c;
    EXPECT_EQ(in_ram.stddevs()[c], streamed.stddevs()[c]) << c;
  }
}

TEST(ShardedLoaderTest, MoreBucketsMeansLessPadding) {
  const LoaderFixture fixture("padding", /*admissions=*/120);
  ShardedLoaderOptions one;
  one.num_buckets = 1;
  ShardedLoaderOptions eight;
  eight.num_buckets = 8;
  ShardedLoader coarse = fixture.MakeLoader(one);
  ShardedLoader fine = fixture.MakeLoader(eight);
  EXPECT_GT(coarse.PaddingWaste(), fine.PaddingWaste());
  EXPECT_GE(fine.PaddingWaste(), 0.0);
}

TEST(ShardedLoaderTest, QuarantinedRecordIsSkippedNotFatal) {
  const LoaderFixture fixture("loader_corrupt", /*admissions=*/40);
  // Break the last record's payload CRC in the last shard.
  CorruptByteAt(fixture.info.paths.back(), 5);
  ShardedLoader loader = fixture.MakeLoader();
  int64_t samples = 0;
  for (const auto& batch : DrainEpoch(&loader)) {
    samples += static_cast<int64_t>(batch.sample_indices.size());
  }
  EXPECT_EQ(samples, fixture.info.num_samples - 1);
  EXPECT_EQ(loader.num_quarantined(), 1);
}

// ---- Streamed training -----------------------------------------------------

class TinyGruModel : public train::SequenceModel {
 public:
  TinyGruModel(int64_t features, int64_t hidden, uint64_t seed)
      : rng_(seed),
        gru_(features, hidden, &rng_),
        head_(hidden, 1, true, &rng_) {
    RegisterSubmodule("gru", &gru_);
    RegisterSubmodule("head", &head_);
  }

  ag::Variable EncodeTerminal(const data::Batch& batch,
                              nn::ForwardContext*) const override {
    const int64_t b = batch.x.shape(0);
    const int64_t t = batch.x.shape(1);
    ag::Variable h =
        gru_.Forward(ag::Constant(batch.x), batch.LengthsOrNull());
    return ag::Reshape(ag::Slice(h, 1, t - 1, 1),
                       {b, gru_.cell().hidden_size()});
  }

  ag::Variable Readout(const ag::Variable& rep,
                       nn::ForwardContext*) const override {
    return ag::Reshape(head_.Forward(rep), {rep.value().shape(0)});
  }

  int64_t encoding_dim() const override { return gru_.cell().hidden_size(); }
  std::string name() const override { return "TinyGRU"; }

 private:
  Rng rng_;
  nn::Gru gru_;
  nn::Linear head_;
};

std::vector<Tensor> ParamValues(train::SequenceModel* model) {
  std::vector<Tensor> values;
  for (const ag::Variable& p : model->Parameters()) {
    values.push_back(p.value().Clone());
  }
  return values;
}

TEST(TrainStreamedTest, TrainsFromShardsWithValAndTest) {
  const LoaderFixture fixture("streamed_train", /*admissions=*/80);
  ShardedLoaderOptions train_opts, val_opts, test_opts;
  train_opts.split_mod = val_opts.split_mod = test_opts.split_mod = 10;
  train_opts.split_keep = {0, 1, 2, 3, 4, 5, 6, 7};
  val_opts.split_keep = {8};
  test_opts.split_keep = {9};
  ShardedLoader train = fixture.MakeLoader(train_opts);
  ShardedLoader val = fixture.MakeLoader(val_opts);
  ShardedLoader test = fixture.MakeLoader(test_opts);

  TinyGruModel model(static_cast<int64_t>(
                         fixture.standardizer.means().size()),
                     8, /*seed=*/5);
  train::TrainerConfig config;
  config.max_epochs = 2;
  config.seed = 11;
  const train::TrainResult result =
      train::Trainer(config).TrainStreamed(&model, &train, &val, &test);
  EXPECT_EQ(result.status, health::TrainStatus::kOk);
  EXPECT_EQ(result.epochs_run, 2);
  EXPECT_GE(result.val.auc_pr, 0.0);
  EXPECT_LE(result.val.auc_roc, 1.0);
  EXPECT_GE(result.test.auc_pr, 0.0);
  EXPECT_GT(result.num_parameters, 0);
}

TEST(TrainStreamedTest, CheckpointResumeIsBitwise) {
  const LoaderFixture fixture("streamed_resume", /*admissions=*/60);
  const int64_t features =
      static_cast<int64_t>(fixture.standardizer.means().size());
  const std::string ckpt = testing::TempDir() + "/streamed_resume.ckpt";
  std::remove(ckpt.c_str());

  // Uninterrupted 4-epoch run.
  train::TrainerConfig config;
  config.max_epochs = 4;
  config.seed = 13;
  std::vector<Tensor> uninterrupted;
  {
    ShardedLoader train = fixture.MakeLoader();
    TinyGruModel model(features, 8, /*seed=*/5);
    const train::TrainResult result = train::Trainer(config).TrainStreamed(
        &model, &train, nullptr, nullptr);
    ASSERT_EQ(result.status, health::TrainStatus::kOk);
    uninterrupted = ParamValues(&model);
  }

  // Same run killed after epoch 2 (checkpointing every epoch)...
  {
    train::TrainerConfig half = config;
    half.max_epochs = 2;
    half.checkpoint_path = ckpt;
    half.checkpoint_every = 1;
    ShardedLoader train = fixture.MakeLoader();
    TinyGruModel model(features, 8, /*seed=*/5);
    ASSERT_EQ(train::Trainer(half)
                  .TrainStreamed(&model, &train, nullptr, nullptr)
                  .status,
              health::TrainStatus::kOk);
  }
  // ... then resumed with a fresh model and a fresh loader.
  {
    train::TrainerConfig resumed = config;
    resumed.checkpoint_path = ckpt;
    resumed.checkpoint_every = 1;
    resumed.resume = true;
    ShardedLoader train = fixture.MakeLoader();
    TinyGruModel model(features, 8, /*seed=*/5);
    const train::TrainResult result = train::Trainer(resumed).TrainStreamed(
        &model, &train, nullptr, nullptr);
    ASSERT_EQ(result.status, health::TrainStatus::kOk);
    const std::vector<Tensor> resumed_params = ParamValues(&model);
    ASSERT_EQ(resumed_params.size(), uninterrupted.size());
    for (size_t i = 0; i < resumed_params.size(); ++i) {
      ASSERT_EQ(resumed_params[i].shape(), uninterrupted[i].shape());
      EXPECT_EQ(std::memcmp(resumed_params[i].data(),
                            uninterrupted[i].data(),
                            resumed_params[i].size() * sizeof(float)),
                0)
          << "parameter " << i;
    }
  }
}

}  // namespace
}  // namespace data
}  // namespace elda
