// Tests for the SIMD transcendental contract (tensor/simd_math.h) and the
// fused elementwise autograd ops built on it.
//
// Three layers of guarantees are pinned here:
//   1. Accuracy: the polynomial kernels stay within the documented ULP
//      budget of correctly-rounded double-precision libm (<= 4 ulp for
//      exp/sigmoid, <= 8 ulp for tanh), including denormals and the
//      saturation boundaries, and special values behave as documented.
//   2. Bitwise identity: the AVX2 path equals the scalar reference bit for
//      bit on every input class (specials, denormals, +/-0, every tail
//      remainder and alignment), and tensor-level results are bitwise
//      stable across thread counts.
//   3. Fusion: each fused op equals its composed chain bitwise in the
//      forward pass, grad-checks numerically, and costs exactly one tape
//      node where the composed chain costs several.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "autograd/variable.h"
#include "gtest/gtest.h"
#include "par/par.h"
#include "tensor/simd_math.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace elda {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();
constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
constexpr float kDenormal = 1e-42f;

// Maps float bits to a number line where adjacent representable floats
// differ by 1 (sign-magnitude -> lexicographic order).
int64_t OrderedBits(float f) {
  int32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  return bits >= 0 ? static_cast<int64_t>(bits)
                   : INT64_C(0x80000000) - static_cast<int64_t>(bits);
}

// ULP distance between `actual` and the float nearest to `expected`.
int64_t UlpFromDouble(float actual, double expected) {
  const float rounded = static_cast<float>(expected);
  if (std::isnan(actual) || std::isnan(rounded)) {
    return std::isnan(actual) == std::isnan(rounded)
               ? 0
               : std::numeric_limits<int64_t>::max();
  }
  if (std::isinf(actual) || std::isinf(rounded)) {
    return actual == rounded ? 0 : std::numeric_limits<int64_t>::max();
  }
  return std::abs(OrderedBits(actual) - OrderedBits(rounded));
}

bool BitsEqual(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// Restores Available()-and-env dispatch even if an assertion fires.
struct ScopedForceScalar {
  explicit ScopedForceScalar(bool force) { simd::ForceScalar(force); }
  ~ScopedForceScalar() { simd::ForceScalar(false); }
};

// A buffer exercising every input class the kernels distinguish: specials,
// signed zeros, denormals, saturation boundaries, and a dense pseudo-random
// spread of ordinary magnitudes.
std::vector<float> VariedInputs(int64_t n, uint64_t seed) {
  static const float specials[] = {
      0.0f,     -0.0f,    kInf,          -kInf,          kNan,
      kDenormal, -kDenormal, 88.5f,      -88.5f,         simd::kExpHi,
      simd::kExpLo, simd::kTanhClamp, -simd::kTanhClamp, 1e30f, -1e30f};
  std::vector<float> out(n);
  uint64_t state = seed * 6364136223846793005ULL + 1442695040888963407ULL;
  for (int64_t i = 0; i < n; ++i) {
    if (i < static_cast<int64_t>(sizeof(specials) / sizeof(specials[0]))) {
      out[i] = specials[i];
      continue;
    }
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const float u = static_cast<float>((state >> 40) & 0xFFFFFF) /
                    static_cast<float>(0xFFFFFF);
    out[i] = (u - 0.5f) * 30.0f;  // [-15, 15]
  }
  return out;
}

// ---------------------------------------------------------------------------
// 1. Accuracy versus double libm.
// ---------------------------------------------------------------------------

TEST(SimdAccuracyTest, ExpWithinUlpBudget) {
  // Dense sweep across the whole non-saturating domain.
  int64_t worst = 0;
  for (double x = -87.0; x <= 88.37; x += 0.003) {
    const float xf = static_cast<float>(x);
    const int64_t ulp = UlpFromDouble(simd::ExpRef(xf), std::exp(double{xf}));
    worst = std::max(worst, ulp);
    ASSERT_LE(ulp, 4) << "exp(" << xf << ")";
  }
  // Small-argument region where exp ~ 1 (gradient-critical).
  for (double x = -1.0; x <= 1.0; x += 1e-4) {
    const float xf = static_cast<float>(x);
    ASSERT_LE(UlpFromDouble(simd::ExpRef(xf), std::exp(double{xf})), 4);
  }
  // Denormal inputs: exp(tiny) == 1 + tiny ~ 1.
  EXPECT_LE(UlpFromDouble(simd::ExpRef(kDenormal), std::exp(double{kDenormal})),
            4);
  EXPECT_LE(
      UlpFromDouble(simd::ExpRef(-kDenormal), std::exp(double{-kDenormal})),
      4);
  SCOPED_TRACE("worst exp ulp: " + std::to_string(worst));
}

TEST(SimdAccuracyTest, ExpSpecialValues) {
  EXPECT_EQ(simd::ExpRef(kInf), kInf);
  EXPECT_EQ(simd::ExpRef(200.0f), kInf);  // above kExpHi saturates
  EXPECT_EQ(simd::ExpRef(-kInf), 0.0f);
  EXPECT_EQ(simd::ExpRef(-200.0f), 0.0f);  // below kExpLo flushes to +0
  EXPECT_FALSE(std::signbit(simd::ExpRef(-200.0f)));
  EXPECT_EQ(simd::ExpRef(0.0f), 1.0f);
  EXPECT_EQ(simd::ExpRef(-0.0f), 1.0f);
  EXPECT_TRUE(std::isnan(simd::ExpRef(kNan)));
  // No denormal outputs anywhere in the domain.
  for (double x = -89.0; x <= 0.0; x += 0.01) {
    const float y = simd::ExpRef(static_cast<float>(x));
    EXPECT_TRUE(y == 0.0f || std::isnormal(y)) << "exp(" << x << ") = " << y;
  }
}

TEST(SimdAccuracyTest, SigmoidWithinUlpBudget) {
  for (double x = -87.0; x <= 87.0; x += 0.003) {
    const float xf = static_cast<float>(x);
    const double expected = 1.0 / (1.0 + std::exp(-double{xf}));
    ASSERT_LE(UlpFromDouble(simd::SigmoidRef(xf), expected), 4)
        << "sigmoid(" << xf << ")";
  }
}

TEST(SimdAccuracyTest, SigmoidSpecialValues) {
  EXPECT_EQ(simd::SigmoidRef(kInf), 1.0f);
  EXPECT_EQ(simd::SigmoidRef(-kInf), 0.0f);
  EXPECT_EQ(simd::SigmoidRef(200.0f), 1.0f);
  EXPECT_EQ(simd::SigmoidRef(-200.0f), 0.0f);
  EXPECT_EQ(simd::SigmoidRef(0.0f), 0.5f);
  EXPECT_EQ(simd::SigmoidRef(-0.0f), 0.5f);
  EXPECT_TRUE(std::isnan(simd::SigmoidRef(kNan)));
  EXPECT_LE(UlpFromDouble(simd::SigmoidRef(kDenormal), 0.5), 4);
}

TEST(SimdAccuracyTest, TanhWithinUlpBudget) {
  // The clamp at +/-kTanhClamp saturates to ~ +/-(1 - 2.7e-7); true tanh
  // beyond the clamp is within ~5 ulp of that, inside the 8-ulp budget.
  for (double x = -12.0; x <= 12.0; x += 0.003) {
    const float xf = static_cast<float>(x);
    ASSERT_LE(UlpFromDouble(simd::TanhRef(xf), std::tanh(double{xf})), 8)
        << "tanh(" << xf << ")";
  }
  // Denormal inputs are outside the ULP budget: the numerator x*P(x^2)
  // underflows and loses precision before the divide rescales it. The
  // guarantee there is sign-correct, magnitude-bounded, and within the
  // denormalization error of x itself (~20% relative at 1e-42).
  const float td = simd::TanhRef(kDenormal);
  EXPECT_GT(td, 0.0f);
  EXPECT_LE(td, kDenormal);
  EXPECT_NEAR(td, kDenormal, 0.25f * kDenormal);
  EXPECT_EQ(simd::TanhRef(-kDenormal), -td);
}

TEST(SimdAccuracyTest, TanhSpecialValues) {
  EXPECT_TRUE(std::isnan(simd::TanhRef(kNan)));
  EXPECT_EQ(simd::TanhRef(0.0f), 0.0f);
  EXPECT_FALSE(std::signbit(simd::TanhRef(0.0f)));
  EXPECT_EQ(simd::TanhRef(-0.0f), -0.0f);
  EXPECT_TRUE(std::signbit(simd::TanhRef(-0.0f)));
  EXPECT_NEAR(simd::TanhRef(kInf), 1.0f, 1e-6f);
  EXPECT_NEAR(simd::TanhRef(-kInf), -1.0f, 1e-6f);
  EXPECT_LE(std::fabs(simd::TanhRef(1e30f)), 1.0f);
}

// ---------------------------------------------------------------------------
// 2. Bitwise identity: AVX2 vs scalar reference, tails, thread counts.
// ---------------------------------------------------------------------------

using UnaryArrayFn = void (*)(const float*, float*, int64_t);

void ExpectUnaryBitwiseParity(UnaryArrayFn fn, const char* name) {
  // Every length 0..33 covers every 8-lane tail remainder with and without
  // full chunks; the +1 offset exercises unaligned loads.
  for (int64_t n = 0; n <= 33; ++n) {
    for (int64_t offset = 0; offset <= 1; ++offset) {
      std::vector<float> x = VariedInputs(n + offset + 7, 17 * n + offset);
      std::vector<float> y_vec(n + 1, -1.0f), y_ref(n + 1, -1.0f);
      {
        ScopedForceScalar scalar(false);
        fn(x.data() + offset, y_vec.data(), n);
      }
      {
        ScopedForceScalar scalar(true);
        fn(x.data() + offset, y_ref.data(), n);
      }
      ASSERT_EQ(std::memcmp(y_vec.data(), y_ref.data(), n * sizeof(float)), 0)
          << name << " n=" << n << " offset=" << offset;
    }
  }
}

TEST(SimdBitwiseTest, UnaryKernelsMatchScalarReference) {
  ExpectUnaryBitwiseParity(simd::ExpArray, "ExpArray");
  ExpectUnaryBitwiseParity(simd::SigmoidArray, "SigmoidArray");
  ExpectUnaryBitwiseParity(simd::TanhArray, "TanhArray");
  ExpectUnaryBitwiseParity(simd::ExpNegReluArray, "ExpNegReluArray");
}

TEST(SimdBitwiseTest, FusedBinaryKernelsMatchScalarReference) {
  using BinaryArrayFn = void (*)(const float*, const float*, float*, int64_t);
  const struct {
    BinaryArrayFn fn;
    const char* name;
  } kernels[] = {{simd::AddSigmoidArray, "AddSigmoidArray"},
                 {simd::AddTanhArray, "AddTanhArray"},
                 {simd::SigmoidGradArray, "SigmoidGradArray"},
                 {simd::TanhGradArray, "TanhGradArray"}};
  for (const auto& k : kernels) {
    for (int64_t n = 0; n <= 33; ++n) {
      std::vector<float> a = VariedInputs(n, 3 * n + 1);
      std::vector<float> b = VariedInputs(n, 5 * n + 2);
      // Grad kernels read b as a forward value; keep it in (0, 1).
      if (k.fn == simd::SigmoidGradArray || k.fn == simd::TanhGradArray) {
        for (float& v : b) v = std::isfinite(v) ? 0.5f + 0.4f * std::sin(v) : v;
      }
      std::vector<float> y_vec(n + 1), y_ref(n + 1);
      {
        ScopedForceScalar scalar(false);
        k.fn(a.data(), b.data(), y_vec.data(), n);
      }
      {
        ScopedForceScalar scalar(true);
        k.fn(a.data(), b.data(), y_ref.data(), n);
      }
      ASSERT_EQ(std::memcmp(y_vec.data(), y_ref.data(), n * sizeof(float)), 0)
          << k.name << " n=" << n;
    }
  }
}

TEST(SimdBitwiseTest, ExpNegReluGradMatchesScalarReference) {
  for (int64_t n = 0; n <= 33; ++n) {
    std::vector<float> g = VariedInputs(n, 7 * n + 1);
    std::vector<float> x = VariedInputs(n, 11 * n + 2);
    std::vector<float> y(n);
    simd::ExpNegReluArray(x.data(), y.data(), n);
    std::vector<float> dx_vec(n + 1), dx_ref(n + 1);
    {
      ScopedForceScalar scalar(false);
      simd::ExpNegReluGradArray(g.data(), y.data(), x.data(), dx_vec.data(), n);
    }
    {
      ScopedForceScalar scalar(true);
      simd::ExpNegReluGradArray(g.data(), y.data(), x.data(), dx_ref.data(), n);
    }
    for (int64_t i = 0; i < n; ++i) {
      uint32_t bv, br;
      std::memcpy(&bv, &dx_vec[i], sizeof(bv));
      std::memcpy(&br, &dx_ref[i], sizeof(br));
      if (std::isnan(dx_vec[i]) && std::isnan(dx_ref[i])) {
        // Documented exception (simd_math.h): the sign bit of a NaN
        // gradient is unspecifiable in portable scalar C; payload and
        // NaN-ness must still agree.
        ASSERT_EQ(bv & 0x7FFFFFFFu, br & 0x7FFFFFFFu) << "n=" << n << " i=" << i;
      } else {
        ASSERT_EQ(bv, br) << "n=" << n << " i=" << i;
      }
    }
  }
}

TEST(SimdBitwiseTest, SoftmaxRowMatchesScalarReference) {
  for (int64_t n = 1; n <= 33; ++n) {
    std::vector<float> x = VariedInputs(n, 13 * n);
    // Softmax rows must be NaN/inf free to stay meaningful; replace specials
    // with finite values but keep +/-0, denormals, and large magnitudes.
    for (float& v : x) {
      if (std::isnan(v)) v = 0.25f;
      if (std::isinf(v)) v = v > 0 ? 30.0f : -30.0f;
      if (std::fabs(v) > 1e4f) v = v > 0 ? 80.0f : -80.0f;
    }
    std::vector<float> y_vec(n), y_ref(n), g = VariedInputs(n, 19 * n + 3);
    for (float& v : g) {
      if (!std::isfinite(v)) v = 0.5f;
      if (std::fabs(v) > 1e4f) v = 2.0f;
    }
    std::vector<float> dx_vec(n), dx_ref(n);
    {
      ScopedForceScalar scalar(false);
      simd::SoftmaxRow(x.data(), y_vec.data(), n);
      simd::SoftmaxGradRow(g.data(), y_vec.data(), dx_vec.data(), n);
    }
    {
      ScopedForceScalar scalar(true);
      simd::SoftmaxRow(x.data(), y_ref.data(), n);
      simd::SoftmaxGradRow(g.data(), y_ref.data(), dx_ref.data(), n);
    }
    ASSERT_EQ(std::memcmp(y_vec.data(), y_ref.data(), n * sizeof(float)), 0)
        << "SoftmaxRow n=" << n;
    ASSERT_EQ(std::memcmp(dx_vec.data(), dx_ref.data(), n * sizeof(float)), 0)
        << "SoftmaxGradRow n=" << n;
    // Rows sum to ~1 and in-place operation matches out-of-place.
    float sum = 0.0f;
    for (int64_t i = 0; i < n; ++i) sum += y_vec[i];
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
    std::vector<float> inplace = x;
    simd::SoftmaxRow(inplace.data(), inplace.data(), n);
    ASSERT_EQ(std::memcmp(inplace.data(), y_vec.data(), n * sizeof(float)), 0);
  }
}

TEST(SimdBitwiseTest, DispatchReportsConsistentState) {
  EXPECT_STREQ(simd::ActivePath(), simd::Enabled() ? "avx2" : "scalar");
  if (!simd::Available()) {
    EXPECT_FALSE(simd::Enabled());
  }
  {
    ScopedForceScalar scalar(true);
    EXPECT_FALSE(simd::Enabled());
    EXPECT_STREQ(simd::ActivePath(), "scalar");
  }
}

// Tensor-level transcendental results are bitwise stable across thread
// counts (partitioning is elementwise, the kernels are deterministic) and
// across the scalar/vector dispatch.
TEST(SimdBitwiseTest, TensorOpsStableAcrossThreadCountsAndDispatch) {
  Rng rng(1234);
  Tensor a = Tensor::Normal({37, 19}, 0.0f, 3.0f, &rng);
  Tensor b = Tensor::Normal({37, 19}, 0.0f, 3.0f, &rng);

  const std::vector<std::function<Tensor()>> ops = {
      [&] { return Exp(a); },
      [&] { return Sigmoid(a); },
      [&] { return Tanh(a); },
      [&] { return AddSigmoid(a, b); },
      [&] { return AddTanh(a, b); },
      [&] { return ExpNegRelu(a); },
      [&] { return Softmax(a, 1); },
      [&] { return SoftmaxLastAxisGrad(b, Softmax(a, 1)); },
  };
  for (size_t i = 0; i < ops.size(); ++i) {
    Tensor base;
    {
      par::ScopedNumThreads threads(1);
      base = ops[i]();
    }
    for (int64_t t : {2, 8}) {
      par::ScopedNumThreads threads(t);
      ASSERT_TRUE(BitsEqual(ops[i](), base)) << "op " << i << " threads " << t;
    }
    {
      ScopedForceScalar scalar(true);
      par::ScopedNumThreads threads(8);
      ASSERT_TRUE(BitsEqual(ops[i](), base)) << "op " << i << " forced scalar";
    }
  }
}

// ---------------------------------------------------------------------------
// 3. Fusion: bitwise-equal to composed chains, grad-checked, tape budgets.
// ---------------------------------------------------------------------------

TEST(SimdFusionTest, FusedForwardMatchesComposedBitwise) {
  Rng rng(99);
  Tensor a = Tensor::Normal({5, 33}, 0.0f, 2.0f, &rng);
  Tensor b = Tensor::Normal({5, 33}, 0.0f, 2.0f, &rng);
  EXPECT_TRUE(BitsEqual(AddSigmoid(a, b), Sigmoid(Add(a, b))));
  EXPECT_TRUE(BitsEqual(AddTanh(a, b), Tanh(Add(a, b))));
  EXPECT_TRUE(BitsEqual(ExpNegRelu(a), Exp(MulScalar(Relu(a), -1.0f))));
  // Broadcast shapes fall back to the composed-functor path and still match.
  Tensor row = Tensor::Normal({1, 33}, 0.0f, 2.0f, &rng);
  EXPECT_TRUE(BitsEqual(AddSigmoid(a, row), Sigmoid(Add(a, row))));
  EXPECT_TRUE(BitsEqual(AddTanh(row, a), Tanh(Add(row, a))));
}

TEST(SimdFusionTest, FusedGradKernelsMatchComposedExpressions) {
  Rng rng(7);
  Tensor g = Tensor::Normal({41}, 0.0f, 1.0f, &rng);
  Tensor x = Tensor::Normal({41}, 0.0f, 4.0f, &rng);
  const Tensor ys = Sigmoid(x);
  const Tensor yt = Tanh(x);
  const Tensor ye = ExpNegRelu(x);
  const Tensor ds = SigmoidGrad(g, ys);
  const Tensor dt = TanhGrad(g, yt);
  const Tensor de = ExpNegReluGrad(g, ye, x);
  for (int64_t i = 0; i < x.size(); ++i) {
    // Exactly the composed backward graphs' float expressions.
    const float sref = g[i] * (ys[i] * (1.0f - ys[i]));
    const float tref = g[i] * (1.0f - yt[i] * yt[i]);
    const float eref = (-(g[i] * ye[i])) * (x[i] > 0.0f ? 1.0f : 0.0f);
    const float sgot = ds[i], tgot = dt[i], egot = de[i];
    ASSERT_EQ(std::memcmp(&sgot, &sref, sizeof(float)), 0) << i;
    ASSERT_EQ(std::memcmp(&tgot, &tref, sizeof(float)), 0) << i;
    ASSERT_EQ(std::memcmp(&egot, &eref, sizeof(float)), 0) << i;
  }
}

ag::Variable Param(std::vector<int64_t> shape, uint64_t seed) {
  Rng rng(seed);
  return ag::Variable(Tensor::Normal(std::move(shape), 0.0f, 1.5f, &rng),
                      /*requires_grad=*/true);
}

void ExpectGradCheck(const std::function<ag::Variable()>& f,
                     const std::vector<ag::Variable>& params) {
  std::string error;
  EXPECT_TRUE(ag::CheckGradients(f, params, {}, &error)) << error;
}

TEST(SimdFusionTest, FusedOpsGradCheckAcrossThreadCounts) {
  for (int64_t threads : {1, 2, 8}) {
    par::ScopedNumThreads scope(threads);
    ag::Variable a = Param({4, 9}, 21);
    ag::Variable b = Param({4, 9}, 22);
    ag::Variable row = Param({1, 9}, 23);
    ExpectGradCheck(
        [&] { return ag::SumAll(ag::Square(ag::AddSigmoid(a, b))); }, {a, b});
    ExpectGradCheck([&] { return ag::SumAll(ag::Square(ag::AddTanh(a, b))); },
                    {a, b});
    // Broadcast operands: the reduced gradient path.
    ExpectGradCheck(
        [&] { return ag::SumAll(ag::Square(ag::AddSigmoid(a, row))); },
        {a, row});
    ExpectGradCheck([&] { return ag::SumAll(ag::Square(ag::ExpNegRelu(a))); },
                    {a});
    ExpectGradCheck(
        [&] { return ag::SumAll(ag::Square(ag::Softmax(a, /*axis=*/1))); },
        {a});
  }
}

// Fused autograd forwards and backwards are bitwise identical to their
// composed twins, and the whole train of gradients is bitwise stable
// across thread counts.
TEST(SimdFusionTest, FusedBackwardMatchesComposedBitwise) {
  auto run = [](bool fused, int64_t threads) {
    par::ScopedNumThreads scope(threads);
    ag::Variable a = Param({6, 17}, 31);
    ag::Variable b = Param({6, 17}, 32);
    ag::Variable x = Param({6, 17}, 33);
    ag::Variable y =
        fused ? ag::Add(ag::AddSigmoid(a, b),
                        ag::Add(ag::AddTanh(a, b), ag::ExpNegRelu(x)))
              : ag::Add(ag::Sigmoid(ag::Add(a, b)),
                        ag::Add(ag::Tanh(ag::Add(a, b)),
                                ag::Exp(ag::MulScalar(ag::Relu(x), -1.0f))));
    ag::SumAll(ag::Square(y)).Backward();
    return std::vector<Tensor>{y.value(), a.grad(), b.grad(), x.grad()};
  };
  const std::vector<Tensor> composed = run(/*fused=*/false, 1);
  for (int64_t threads : {1, 2, 8}) {
    const std::vector<Tensor> fused = run(/*fused=*/true, threads);
    for (size_t i = 0; i < composed.size(); ++i) {
      ASSERT_TRUE(BitsEqual(fused[i], composed[i]))
          << "tensor " << i << " threads " << threads;
    }
  }
}

TEST(SimdFusionTest, FusedChainsCostOneTapeNode) {
  ag::Variable a = Param({3, 8}, 41);
  ag::Variable b = Param({3, 8}, 42);

  int64_t before = ag::TapeNodesAllocated();
  ag::Variable s = ag::AddSigmoid(a, b);
  EXPECT_EQ(ag::TapeNodesAllocated() - before, 1);

  before = ag::TapeNodesAllocated();
  ag::Variable t = ag::AddTanh(a, b);
  EXPECT_EQ(ag::TapeNodesAllocated() - before, 1);

  before = ag::TapeNodesAllocated();
  ag::Variable e = ag::ExpNegRelu(a);
  EXPECT_EQ(ag::TapeNodesAllocated() - before, 1);

  before = ag::TapeNodesAllocated();
  ag::Variable sm = ag::Softmax(a, /*axis=*/1);
  EXPECT_EQ(ag::TapeNodesAllocated() - before, 1);

  // The composed chains they replace cost 2, 2, 3 nodes respectively.
  before = ag::TapeNodesAllocated();
  ag::Variable sc = ag::Sigmoid(ag::Add(a, b));
  EXPECT_EQ(ag::TapeNodesAllocated() - before, 2);
  before = ag::TapeNodesAllocated();
  ag::Variable ec = ag::Exp(ag::MulScalar(ag::Relu(a), -1.0f));
  EXPECT_EQ(ag::TapeNodesAllocated() - before, 3);
}

}  // namespace
}  // namespace elda
