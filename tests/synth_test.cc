#include <algorithm>
#include <cmath>
#include <map>

#include "data/pipeline.h"
#include "gtest/gtest.h"
#include "synth/features.h"
#include "synth/simulator.h"

namespace elda {
namespace synth {
namespace {

// A small cohort reused across tests (generation is the expensive part).
const data::EmrDataset& SmallCohort() {
  static const data::EmrDataset* kCohort = [] {
    CohortConfig config = SynthPhysioNet2012();
    config.num_admissions = 600;
    return new data::EmrDataset(GenerateCohort(config));
  }();
  return *kCohort;
}

TEST(FeatureTableTest, HasThirtySevenFeatures) {
  EXPECT_EQ(FeatureTable().size(), 37u);
  EXPECT_EQ(FeatureNames().size(), 37u);
}

TEST(FeatureTableTest, IndexLookupsMatchEnum) {
  EXPECT_EQ(FeatureIndexByName("Glucose"), kGlucose);
  EXPECT_EQ(FeatureIndexByName("Lactate"), kLactate);
  EXPECT_EQ(FeatureIndexByName("pH"), kPh);
  EXPECT_EQ(FeatureIndexByName("Weight"), kWeight);
  EXPECT_EQ(FeatureNames()[kMap], "MAP");
}

TEST(FeatureTableTest, SpecsArePhysiologicallySane) {
  for (const FeatureSpec& spec : FeatureTable()) {
    EXPECT_GT(spec.baseline_std, 0.0f) << spec.name;
    EXPECT_GT(spec.base_obs_rate, 0.0f) << spec.name;
    EXPECT_LE(spec.base_obs_rate, 1.0f) << spec.name;
    EXPECT_LE(spec.floor, spec.baseline_mean) << spec.name;
  }
}

TEST(TrajectoryTest, SeverityStaysInRange) {
  Rng rng(1);
  for (int64_t c = 0; c < static_cast<int64_t>(Condition::kNumConditions);
       ++c) {
    auto trajectory = internal::SimulateTrajectory(
        static_cast<Condition>(c), 48, &rng);
    ASSERT_EQ(trajectory.severity.size(), 48u);
    for (float s : trajectory.severity) {
      EXPECT_GE(s, 0.0f);
      EXPECT_LE(s, 4.0f);
    }
    for (float e : trajectory.episode) {
      EXPECT_GE(e, 0.0f);
      EXPECT_LE(e, 1.0f);
    }
  }
}

TEST(TrajectoryTest, StableConditionHasNoEpisode) {
  Rng rng(2);
  auto trajectory =
      internal::SimulateTrajectory(Condition::kStable, 48, &rng);
  for (float e : trajectory.episode) EXPECT_EQ(e, 0.0f);
}

TEST(ConditionShiftTest, DlaCouplesTheExpectedFeatureSet) {
  // At full episode intensity a DLA patient shows the Section I pattern:
  // Lactate up, pH down, HCO3 down, Temp down, MAP down, Glucose up.
  EXPECT_GT(internal::ConditionShift(Condition::kDmDla, kLactate, 1, 1), 1.5f);
  EXPECT_LT(internal::ConditionShift(Condition::kDmDla, kPh, 1, 1), -1.0f);
  EXPECT_LT(internal::ConditionShift(Condition::kDmDla, kHco3, 1, 1), -1.0f);
  EXPECT_LT(internal::ConditionShift(Condition::kDmDla, kTemp, 1, 1), -0.5f);
  EXPECT_LT(internal::ConditionShift(Condition::kDmDla, kMap, 1, 1), -0.5f);
  EXPECT_GT(internal::ConditionShift(Condition::kDmDla, kGlucose, 1, 1), 2.0f);
  // Irrelevant features stay untouched (HCT, WBC per Fig. 9 discussion).
  EXPECT_EQ(internal::ConditionShift(Condition::kDmDla, kHct, 1, 1), 0.0f);
  EXPECT_EQ(internal::ConditionShift(Condition::kDmDla, kWbc, 1, 1), 0.0f);
}

TEST(ConditionShiftTest, DkaRaisesGlucoseWithoutLactate) {
  EXPECT_GT(internal::ConditionShift(Condition::kDmDka, kGlucose, 1, 1), 2.0f);
  EXPECT_EQ(internal::ConditionShift(Condition::kDmDka, kLactate, 1, 1), 0.0f);
  EXPECT_LT(internal::ConditionShift(Condition::kDmDka, kPh, 1, 1), -1.0f);
}

TEST(ConditionShiftTest, PlainDmOnlyElevatesGlucose) {
  for (int64_t c = 0; c < kNumFeatures; ++c) {
    const float shift = internal::ConditionShift(Condition::kDm, c, 1, 0);
    if (c == kGlucose) {
      EXPECT_GT(shift, 1.0f);
    } else {
      EXPECT_EQ(shift, 0.0f);
    }
  }
}

TEST(CohortTest, DimensionsMatchConfig) {
  const data::EmrDataset& cohort = SmallCohort();
  EXPECT_EQ(cohort.size(), 600);
  EXPECT_EQ(cohort.num_steps(), 48);
  EXPECT_EQ(cohort.num_features(), 37);
}

TEST(CohortTest, MissingRateNearTableOne) {
  // Paper: 79.78% missing for PhysioNet2012. Allow a small band.
  const double missing = SmallCohort().MissingRate();
  EXPECT_GT(missing, 0.74);
  EXPECT_LT(missing, 0.85);
}

TEST(CohortTest, RecordsPerPatientNearTableOne) {
  // Paper: 359.19 records per patient (48 x 37 grid).
  const double records = SmallCohort().AvgRecordsPerPatient();
  EXPECT_GT(records, 280.0);
  EXPECT_LT(records, 450.0);
}

TEST(CohortTest, MortalityRateNearTarget) {
  const double rate =
      static_cast<double>(SmallCohort().CountMortality()) / 600.0;
  EXPECT_GT(rate, 0.09);
  EXPECT_LT(rate, 0.20);
}

TEST(CohortTest, LosRateNearTarget) {
  const double rate =
      static_cast<double>(SmallCohort().CountLosGt7()) / 600.0;
  EXPECT_GT(rate, 0.55);
  EXPECT_LT(rate, 0.75);
}

TEST(CohortTest, DeterministicForFixedSeed) {
  CohortConfig config = SynthPhysioNet2012();
  config.num_admissions = 20;
  data::EmrDataset a = GenerateCohort(config);
  data::EmrDataset b = GenerateCohort(config);
  ASSERT_EQ(a.size(), b.size());
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.sample(i).values, b.sample(i).values);
    EXPECT_EQ(a.sample(i).observed, b.sample(i).observed);
    EXPECT_EQ(a.sample(i).mortality_label, b.sample(i).mortality_label);
  }
}

TEST(CohortTest, DifferentSeedsDiffer) {
  CohortConfig config = SynthPhysioNet2012();
  config.num_admissions = 5;
  data::EmrDataset a = GenerateCohort(config);
  config.seed += 1;
  data::EmrDataset b = GenerateCohort(config);
  EXPECT_NE(a.sample(0).values, b.sample(0).values);
}

TEST(CohortTest, SicknessCorrelatesWithMortality) {
  // Informative labels: the average max-Lactate z among non-survivors should
  // exceed that among survivors.
  const data::EmrDataset& cohort = SmallCohort();
  const FeatureSpec& lactate = FeatureTable()[kLactate];
  double sick_sum = 0.0, well_sum = 0.0;
  int64_t sick_n = 0, well_n = 0;
  for (const auto& s : cohort.samples()) {
    float max_z = -10.0f;
    for (int64_t t = 0; t < s.num_steps; ++t) {
      if (!s.is_observed(t, kLactate)) continue;
      max_z = std::max(max_z, (s.value(t, kLactate) - lactate.baseline_mean) /
                                  lactate.baseline_std);
    }
    if (max_z == -10.0f) continue;
    if (s.mortality_label == 1.0f) {
      sick_sum += max_z;
      ++sick_n;
    } else {
      well_sum += max_z;
      ++well_n;
    }
  }
  ASSERT_GT(sick_n, 10);
  ASSERT_GT(well_n, 10);
  EXPECT_GT(sick_sum / sick_n, well_sum / well_n + 0.2);
}

TEST(CohortTest, ValuesRespectPhysiologicalFloors) {
  const data::EmrDataset& cohort = SmallCohort();
  const auto& table = FeatureTable();
  for (int64_t i = 0; i < std::min<int64_t>(cohort.size(), 100); ++i) {
    const auto& s = cohort.sample(i);
    for (int64_t t = 0; t < s.num_steps; ++t) {
      for (int64_t c = 0; c < s.num_features; ++c) {
        if (!s.is_observed(t, c)) continue;
        if (c == kMechVent) {
          EXPECT_TRUE(s.value(t, c) == 0.0f || s.value(t, c) == 1.0f);
        } else {
          EXPECT_GE(s.value(t, c), table[c].floor)
              << table[c].name << " at t=" << t;
        }
      }
    }
  }
}

TEST(CohortTest, DlaPatientsShowGlucoseLactateCooccurrence) {
  // Within DM+DLA admissions, hours with very high glucose should also show
  // elevated lactate (the interaction the paper's Fig. 9 visualises).
  CohortConfig config = SynthPhysioNet2012();
  config.num_admissions = 400;
  config.condition_mix = {0, 0, 0, 1, 0, 0, 0};  // all DLA
  config.seed = 99;
  data::EmrDataset cohort = GenerateCohort(config);
  const auto& table = FeatureTable();
  double lactate_during_high_glucose = 0.0;
  double lactate_otherwise = 0.0;
  int64_t n_high = 0, n_low = 0;
  for (const auto& s : cohort.samples()) {
    for (int64_t t = 0; t < s.num_steps; ++t) {
      if (!s.is_observed(t, kGlucose) || !s.is_observed(t, kLactate)) continue;
      const float zg = (s.value(t, kGlucose) - table[kGlucose].baseline_mean) /
                       table[kGlucose].baseline_std;
      const float zl = (s.value(t, kLactate) - table[kLactate].baseline_mean) /
                       table[kLactate].baseline_std;
      if (zg > 2.0f) {
        lactate_during_high_glucose += zl;
        ++n_high;
      } else {
        lactate_otherwise += zl;
        ++n_low;
      }
    }
  }
  ASSERT_GT(n_high, 20);
  ASSERT_GT(n_low, 20);
  EXPECT_GT(lactate_during_high_glucose / n_high,
            lactate_otherwise / n_low + 0.5);
}

TEST(CohortTest, CrisesAreExtremeInCohortStandardisedUnits) {
  // Figs. 9-10 depend on crises registering as extreme *standardised*
  // values (real ICU crises run many sigma from the admission norm). Fit a
  // standardizer on a mixed cohort and verify DLA lactate peaks land beyond
  // 2.5 cohort-sigma.
  CohortConfig config = SynthPhysioNet2012();
  config.num_admissions = 400;
  config.seed = 321;
  data::EmrDataset cohort = GenerateCohort(config);
  std::vector<int64_t> all(cohort.size());
  for (int64_t i = 0; i < cohort.size(); ++i) all[i] = i;
  data::Standardizer standardizer;
  standardizer.Fit(cohort, all);
  float max_z = 0.0f;
  for (const auto& s : cohort.samples()) {
    if (s.condition != static_cast<int64_t>(Condition::kDmDla)) continue;
    for (int64_t t = 0; t < s.num_steps; ++t) {
      if (!s.is_observed(t, kLactate)) continue;
      const float z = (s.value(t, kLactate) - standardizer.mean(kLactate)) /
                      standardizer.stddev(kLactate);
      max_z = std::max(max_z, z);
    }
  }
  EXPECT_GT(max_z, 2.5f);
}

TEST(ShowcaseTest, GlucoseRisesAtTwelveAndSettlesByThirtyFive) {
  data::EmrSample patient = MakeDlaShowcasePatient();
  const auto& table = FeatureTable();
  auto glucose_z = [&](int64_t t) {
    return (patient.value(t, kGlucose) - table[kGlucose].baseline_mean) /
           table[kGlucose].baseline_std;
  };
  // Early hours: near-normal (only the DM baseline elevation).
  double early = 0.0;
  for (int64_t t = 2; t < 10; ++t) early += glucose_z(t);
  early /= 8.0;
  // Peak hours: strongly elevated.
  double peak = 0.0;
  for (int64_t t = 18; t < 28; ++t) peak += glucose_z(t);
  peak /= 10.0;
  // Late hours: decayed back toward the DM baseline.
  double late = 0.0;
  for (int64_t t = 40; t < 48; ++t) late += glucose_z(t);
  late /= 8.0;
  EXPECT_GT(peak, early + 1.0);
  EXPECT_GT(peak, late + 1.0);
}

TEST(ShowcaseTest, AcidosisPatternDuringEpisode) {
  data::EmrSample patient = MakeDlaShowcasePatient();
  const auto& table = FeatureTable();
  auto z = [&](int64_t t, int64_t c) {
    return (patient.value(t, c) - table[c].baseline_mean) /
           table[c].baseline_std;
  };
  // Averaged over the plateau (hours 18-28): lactate high, pH low, HCO3 low,
  // Temp low, MAP low.
  double lactate = 0, ph = 0, hco3 = 0, temp = 0, map = 0;
  for (int64_t t = 18; t < 28; ++t) {
    lactate += z(t, kLactate);
    ph += z(t, kPh);
    hco3 += z(t, kHco3);
    temp += z(t, kTemp);
    map += z(t, kMap);
  }
  EXPECT_GT(lactate / 10, 1.0);
  EXPECT_LT(ph / 10, -0.7);
  EXPECT_LT(hco3 / 10, -0.7);
  EXPECT_LT(temp / 10, -0.4);
  EXPECT_LT(map / 10, -0.5);
}

TEST(ShowcaseTest, DenselyObserved) {
  data::EmrSample patient = MakeDlaShowcasePatient();
  EXPECT_EQ(patient.NumRecords(), 48 * 37);
}

TEST(PipelineIntegrationTest, CohortFlowsThroughPreparation) {
  CohortConfig config = SynthPhysioNet2012();
  config.num_admissions = 50;
  data::EmrDataset cohort = GenerateCohort(config);
  Rng rng(11);
  data::SplitIndices split = data::SplitDataset(cohort.size(), 0.8, 0.1, &rng);
  data::Standardizer standardizer;
  standardizer.Fit(cohort, split.train);
  auto prepared = data::PrepareDataset(cohort, standardizer);
  ASSERT_EQ(prepared.size(), 50u);
  // Standardised observed values should be roughly centred.
  double sum = 0.0;
  int64_t count = 0;
  for (const auto& p : prepared) {
    for (int64_t i = 0; i < p.x.size(); ++i) {
      if (p.mask[i] == 1.0f) {
        sum += p.x[i];
        ++count;
        EXPECT_TRUE(std::isfinite(p.x[i]));
        EXPECT_LT(std::fabs(p.x[i]), 30.0f);
      }
    }
  }
  EXPECT_LT(std::fabs(sum / count), 0.25);
}

TEST(ConditionNameTest, AllConditionsNamed) {
  EXPECT_EQ(ConditionName(Condition::kDmDla), "DM+DLA");
  EXPECT_EQ(ConditionName(Condition::kStable), "Stable");
  EXPECT_EQ(ConditionName(Condition::kSepsis), "Sepsis");
}

}  // namespace
}  // namespace synth
}  // namespace elda
