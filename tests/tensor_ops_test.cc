#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace elda {
namespace {

Tensor RandomTensor(std::vector<int64_t> shape, uint64_t seed) {
  Rng rng(seed);
  return Tensor::Normal(std::move(shape), 0.0f, 1.0f, &rng);
}

// Reference matmul used to validate the optimised kernels.
Tensor NaiveMatMul2d(const Tensor& a, const Tensor& b) {
  const int64_t m = a.shape(0), k = a.shape(1), n = b.shape(1);
  Tensor c({m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        s += static_cast<double>(a.at({i, p})) * b.at({p, j});
      }
      c.at({i, j}) = static_cast<float>(s);
    }
  }
  return c;
}

TEST(BroadcastTest, ShapesCombinePerNumpyRules) {
  EXPECT_EQ(BroadcastShapes({2, 3}, {2, 3}), (std::vector<int64_t>{2, 3}));
  EXPECT_EQ(BroadcastShapes({2, 3}, {3}), (std::vector<int64_t>{2, 3}));
  EXPECT_EQ(BroadcastShapes({2, 1, 4}, {3, 1}),
            (std::vector<int64_t>{2, 3, 4}));
  EXPECT_EQ(BroadcastShapes({}, {5}), (std::vector<int64_t>{5}));
}

TEST(BroadcastDeathTest, IncompatibleShapesAbort) {
  EXPECT_DEATH(BroadcastShapes({2, 3}, {4}), "CHECK failed");
}

TEST(ElementwiseTest, AddSameShape) {
  Tensor a = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromData({2, 2}, {10, 20, 30, 40});
  Tensor c = Add(a, b);
  EXPECT_EQ(c[0], 11.0f);
  EXPECT_EQ(c[3], 44.0f);
}

TEST(ElementwiseTest, AddSuffixBroadcast) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor bias = Tensor::FromData({3}, {10, 20, 30});
  Tensor c = Add(a, bias);
  EXPECT_EQ((c.at({0, 0})), 11.0f);
  EXPECT_EQ((c.at({1, 2})), 36.0f);
}

TEST(ElementwiseTest, GeneralBroadcastWithInnerOnes) {
  // [2,1,3] * [1,4,1] -> [2,4,3]
  Tensor a = Tensor::FromData({2, 1, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromData({1, 4, 1}, {1, 10, 100, 1000});
  Tensor c = Mul(a, b);
  ASSERT_EQ(c.shape(), (std::vector<int64_t>{2, 4, 3}));
  EXPECT_EQ((c.at({0, 0, 0})), 1.0f);
  EXPECT_EQ((c.at({0, 1, 2})), 30.0f);
  EXPECT_EQ((c.at({1, 3, 0})), 4000.0f);
}

TEST(ElementwiseTest, ScalarTensorBroadcast) {
  Tensor a = Tensor::FromData({3}, {1, 2, 3});
  Tensor s = Tensor::Scalar(2.0f);
  Tensor c = Mul(a, s);
  EXPECT_EQ(c[2], 6.0f);
  Tensor d = Mul(s, a);  // broadcast on the left too
  EXPECT_EQ(d[1], 4.0f);
}

TEST(ElementwiseTest, SubDivMaximum) {
  Tensor a = Tensor::FromData({3}, {4, 9, -2});
  Tensor b = Tensor::FromData({3}, {2, 3, 5});
  EXPECT_EQ(Sub(a, b)[0], 2.0f);
  EXPECT_EQ(Div(a, b)[1], 3.0f);
  EXPECT_EQ(Maximum(a, b)[2], 5.0f);
}

TEST(ElementwiseTest, ScalarHelpers) {
  Tensor a = Tensor::FromData({2}, {1, -1});
  EXPECT_EQ(AddScalar(a, 5)[0], 6.0f);
  EXPECT_EQ(MulScalar(a, -2)[1], 2.0f);
}

TEST(UnaryTest, BasicFunctions) {
  Tensor a = Tensor::FromData({4}, {-1.0f, 0.0f, 1.0f, 2.0f});
  EXPECT_EQ(Neg(a)[0], 1.0f);
  EXPECT_NEAR(Exp(a)[3], std::exp(2.0f), 1e-5);
  EXPECT_NEAR(Sqrt(Tensor::FromData({1}, {9.0f}))[0], 3.0f, 1e-6);
  EXPECT_EQ(Abs(a)[0], 1.0f);
  EXPECT_EQ(Square(a)[3], 4.0f);
  EXPECT_EQ(Relu(a)[0], 0.0f);
  EXPECT_EQ(Relu(a)[3], 2.0f);
  EXPECT_NEAR(Tanh(a)[2], std::tanh(1.0f), 1e-6);
  EXPECT_NEAR(Pow(a, 2.0f)[3], 4.0f, 1e-6);
}

TEST(UnaryTest, LogClampsAtTinyValues) {
  Tensor a = Tensor::FromData({2}, {0.0f, 1.0f});
  Tensor l = Log(a);
  EXPECT_TRUE(std::isfinite(l[0]));
  EXPECT_NEAR(l[1], 0.0f, 1e-6);
}

TEST(UnaryTest, SigmoidStableAtExtremes) {
  Tensor a = Tensor::FromData({3}, {-100.0f, 0.0f, 100.0f});
  Tensor s = Sigmoid(a);
  EXPECT_NEAR(s[0], 0.0f, 1e-6);
  EXPECT_NEAR(s[1], 0.5f, 1e-6);
  EXPECT_NEAR(s[2], 1.0f, 1e-6);
}

TEST(UnaryTest, ClipBounds) {
  Tensor a = Tensor::FromData({3}, {-5.0f, 0.5f, 5.0f});
  Tensor c = Clip(a, -1.0f, 1.0f);
  EXPECT_EQ(c[0], -1.0f);
  EXPECT_EQ(c[1], 0.5f);
  EXPECT_EQ(c[2], 1.0f);
}

TEST(UnaryTest, SelectorOps) {
  Tensor a = Tensor::FromData({3}, {-1.0f, 0.0f, 2.0f});
  Tensor g = GreaterThanScalar(a, 0.0f);
  EXPECT_EQ(g[0], 0.0f);
  EXPECT_EQ(g[2], 1.0f);
  Tensor e = EqualScalar(a, 0.0f);
  EXPECT_EQ(e[1], 1.0f);
  EXPECT_EQ(e[0], 0.0f);
}

TEST(UnaryTest, EqualScalarTolerance) {
  // The default tolerance (1e-6) absorbs rounding in computed values; an
  // explicit 0.0f restores exact comparison.
  Tensor a = Tensor::FromData({3}, {0.0f, 5e-7f, 1e-3f});
  Tensor e = EqualScalar(a, 0.0f);
  EXPECT_EQ(e[0], 1.0f);
  EXPECT_EQ(e[1], 1.0f);  // within default tolerance
  EXPECT_EQ(e[2], 0.0f);
  Tensor exact = EqualScalar(a, 0.0f, 0.0f);
  EXPECT_EQ(exact[0], 1.0f);
  EXPECT_EQ(exact[1], 0.0f);
}

TEST(MatMulTest, MatchesNaive2d) {
  Tensor a = RandomTensor({7, 5}, 1);
  Tensor b = RandomTensor({5, 9}, 2);
  EXPECT_TRUE(AllClose(MatMul(a, b), NaiveMatMul2d(a, b), 1e-4f, 1e-4f));
}

TEST(MatMulTest, TransAMatchesExplicitTranspose) {
  Tensor a = RandomTensor({5, 7}, 3);  // stored [K, M]
  Tensor b = RandomTensor({5, 9}, 4);
  Tensor expected = NaiveMatMul2d(Transpose(a), b);
  EXPECT_TRUE(AllClose(MatMul(a, b, true, false), expected, 1e-4f, 1e-4f));
}

TEST(MatMulTest, TransBMatchesExplicitTranspose) {
  Tensor a = RandomTensor({7, 5}, 5);
  Tensor b = RandomTensor({9, 5}, 6);  // stored [N, K]
  Tensor expected = NaiveMatMul2d(a, Transpose(b));
  EXPECT_TRUE(AllClose(MatMul(a, b, false, true), expected, 1e-4f, 1e-4f));
}

TEST(MatMulTest, BothTransposed) {
  Tensor a = RandomTensor({5, 7}, 7);
  Tensor b = RandomTensor({9, 5}, 8);
  Tensor expected = NaiveMatMul2d(Transpose(a), Transpose(b));
  EXPECT_TRUE(AllClose(MatMul(a, b, true, true), expected, 1e-4f, 1e-4f));
}

TEST(MatMulTest, Batched3dMatchesPerSlice) {
  Tensor a = RandomTensor({4, 3, 5}, 9);
  Tensor b = RandomTensor({4, 5, 2}, 10);
  Tensor c = MatMul(a, b);
  ASSERT_EQ(c.shape(), (std::vector<int64_t>{4, 3, 2}));
  for (int64_t i = 0; i < 4; ++i) {
    Tensor as = Slice(a, 0, i, 1).Reshape({3, 5});
    Tensor bs = Slice(b, 0, i, 1).Reshape({5, 2});
    Tensor cs = Slice(c, 0, i, 1).Reshape({3, 2});
    EXPECT_TRUE(AllClose(cs, NaiveMatMul2d(as, bs), 1e-4f, 1e-4f));
  }
}

TEST(MatMulTest, SharedRhs3dx2d) {
  Tensor a = RandomTensor({4, 3, 5}, 11);
  Tensor w = RandomTensor({5, 2}, 12);
  Tensor c = MatMul(a, w);
  ASSERT_EQ(c.shape(), (std::vector<int64_t>{4, 3, 2}));
  for (int64_t i = 0; i < 4; ++i) {
    Tensor as = Slice(a, 0, i, 1).Reshape({3, 5});
    Tensor cs = Slice(c, 0, i, 1).Reshape({3, 2});
    EXPECT_TRUE(AllClose(cs, NaiveMatMul2d(as, w), 1e-4f, 1e-4f));
  }
}

TEST(MatMulDeathTest, InnerDimMismatchAborts) {
  Tensor a({2, 3});
  Tensor b({4, 2});
  EXPECT_DEATH(MatMul(a, b), "CHECK failed");
}

TEST(TransposeTest, RoundTrips) {
  Tensor a = RandomTensor({3, 5}, 13);
  EXPECT_TRUE(AllClose(Transpose(Transpose(a)), a));
  Tensor b = RandomTensor({2, 3, 5}, 14);
  EXPECT_TRUE(AllClose(TransposeLast2(TransposeLast2(b)), b));
}

TEST(TransposeTest, MovesElements) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = Transpose(a);
  EXPECT_EQ((t.at({0, 1})), 4.0f);
  EXPECT_EQ((t.at({2, 0})), 3.0f);
}

TEST(ConcatSliceTest, ConcatAlongEachAxis) {
  Tensor a = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromData({2, 2}, {5, 6, 7, 8});
  Tensor c0 = Concat({a, b}, 0);
  ASSERT_EQ(c0.shape(), (std::vector<int64_t>{4, 2}));
  EXPECT_EQ((c0.at({2, 0})), 5.0f);
  Tensor c1 = Concat({a, b}, 1);
  ASSERT_EQ(c1.shape(), (std::vector<int64_t>{2, 4}));
  EXPECT_EQ((c1.at({0, 2})), 5.0f);
  EXPECT_EQ((c1.at({1, 3})), 8.0f);
}

TEST(ConcatSliceTest, SliceConcatRoundTrip) {
  Tensor a = RandomTensor({3, 4, 5}, 15);
  for (int64_t axis = 0; axis < 3; ++axis) {
    Tensor left = Slice(a, axis, 0, 2);
    Tensor right = Slice(a, axis, 2, a.shape(axis) - 2);
    EXPECT_TRUE(AllClose(Concat({left, right}, axis), a));
  }
}

TEST(ConcatSliceTest, NegativeAxis) {
  Tensor a = RandomTensor({2, 3}, 16);
  Tensor s = Slice(a, -1, 1, 2);
  EXPECT_EQ(s.shape(), (std::vector<int64_t>{2, 2}));
  EXPECT_EQ((s.at({0, 0})), (a.at({0, 1})));
}

TEST(ReduceTest, SumAlongEachAxis) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s0 = Sum(a, 0);
  ASSERT_EQ(s0.shape(), (std::vector<int64_t>{3}));
  EXPECT_EQ(s0[0], 5.0f);
  EXPECT_EQ(s0[2], 9.0f);
  Tensor s1 = Sum(a, 1);
  ASSERT_EQ(s1.shape(), (std::vector<int64_t>{2}));
  EXPECT_EQ(s1[0], 6.0f);
  EXPECT_EQ(s1[1], 15.0f);
}

TEST(ReduceTest, KeepDimsPreservesRank) {
  Tensor a({2, 3, 4});
  Tensor s = Sum(a, 1, /*keepdims=*/true);
  EXPECT_EQ(s.shape(), (std::vector<int64_t>{2, 1, 4}));
}

TEST(ReduceTest, MeanAndScalarReductions) {
  Tensor a = Tensor::FromData({4}, {1, 2, 3, 4});
  EXPECT_EQ(SumAll(a), 10.0f);
  EXPECT_EQ(MeanAll(a), 2.5f);
  EXPECT_EQ(MaxAll(a), 4.0f);
  Tensor m = Mean(Tensor::FromData({2, 2}, {1, 3, 5, 7}), 1);
  EXPECT_EQ(m[0], 2.0f);
  EXPECT_EQ(m[1], 6.0f);
}

TEST(ReduceTest, MaxAlongAxis) {
  Tensor a = Tensor::FromData({2, 3}, {1, 9, 3, 7, 2, 6});
  Tensor m = Max(a, 1);
  EXPECT_EQ(m[0], 9.0f);
  EXPECT_EQ(m[1], 7.0f);
  Tensor m0 = Max(a, 0);
  EXPECT_EQ(m0[0], 7.0f);
  EXPECT_EQ(m0[1], 9.0f);
}

TEST(SoftmaxTest, RowsSumToOne) {
  Tensor a = RandomTensor({4, 7}, 17);
  Tensor s = Softmax(a, 1);
  for (int64_t i = 0; i < 4; ++i) {
    float row_sum = 0.0f;
    for (int64_t j = 0; j < 7; ++j) row_sum += s.at({i, j});
    EXPECT_NEAR(row_sum, 1.0f, 1e-5);
  }
}

TEST(SoftmaxTest, StableUnderLargeLogits) {
  Tensor a = Tensor::FromData({1, 3}, {1000.0f, 1000.0f, 1000.0f});
  Tensor s = Softmax(a, 1);
  for (int64_t i = 0; i < 3; ++i) EXPECT_NEAR(s[i], 1.0f / 3.0f, 1e-5);
}

TEST(SoftmaxTest, WorksAlongMiddleAxis) {
  Tensor a = RandomTensor({2, 5, 3}, 18);
  Tensor s = Softmax(a, 1);
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t k = 0; k < 3; ++k) {
      float col = 0.0f;
      for (int64_t i = 0; i < 5; ++i) col += s.at({b, i, k});
      EXPECT_NEAR(col, 1.0f, 1e-5);
    }
  }
}

TEST(SoftmaxTest, MaskedEntriesGetZeroWeight) {
  Tensor a = Tensor::FromData({1, 3}, {1.0f, -1e9f, 2.0f});
  Tensor s = Softmax(a, 1);
  EXPECT_NEAR(s[1], 0.0f, 1e-7);
  EXPECT_NEAR(s[0] + s[2], 1.0f, 1e-5);
}

TEST(ReduceToShapeTest, SumsBroadcastDims) {
  Tensor g = Tensor::Ones({4, 3});
  Tensor r = ReduceToShape(g, {3});
  ASSERT_EQ(r.shape(), (std::vector<int64_t>{3}));
  EXPECT_EQ(r[0], 4.0f);
  Tensor r2 = ReduceToShape(Tensor::Ones({2, 3, 4}), {2, 1, 4});
  EXPECT_EQ(r2.shape(), (std::vector<int64_t>{2, 1, 4}));
  EXPECT_EQ(r2[0], 3.0f);
}

TEST(ReduceToShapeTest, IdentityWhenShapesMatch) {
  Tensor g = RandomTensor({2, 3}, 19);
  EXPECT_TRUE(AllClose(ReduceToShape(g, {2, 3}), g));
}

TEST(CompareTest, AllCloseAndMaxAbsDiff) {
  Tensor a = Tensor::FromData({2}, {1.0f, 2.0f});
  Tensor b = Tensor::FromData({2}, {1.0f, 2.00001f});
  EXPECT_TRUE(AllClose(a, b));
  Tensor c = Tensor::FromData({2}, {1.0f, 3.0f});
  EXPECT_FALSE(AllClose(a, c));
  EXPECT_NEAR(MaxAbsDiff(a, c), 1.0f, 1e-6);
  Tensor d({3});
  EXPECT_FALSE(AllClose(a, d));  // shape mismatch
}

}  // namespace
}  // namespace elda
