// Property-based sweeps over the tensor algebra: algebraic identities that
// must hold for every shape/broadcast combination the library supports.

#include <cmath>
#include <tuple>
#include <vector>

#include "gtest/gtest.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace elda {
namespace {

using ShapePair = std::tuple<std::vector<int64_t>, std::vector<int64_t>>;

Tensor RandomTensor(const std::vector<int64_t>& shape, uint64_t seed) {
  Rng rng(seed);
  return Tensor::Normal(shape, 0.0f, 1.0f, &rng);
}

class BroadcastPropertyTest : public ::testing::TestWithParam<ShapePair> {};

TEST_P(BroadcastPropertyTest, AddCommutes) {
  const auto& [sa, sb] = GetParam();
  Tensor a = RandomTensor(sa, 1);
  Tensor b = RandomTensor(sb, 2);
  EXPECT_TRUE(AllClose(Add(a, b), Add(b, a)));
}

TEST_P(BroadcastPropertyTest, MulCommutes) {
  const auto& [sa, sb] = GetParam();
  Tensor a = RandomTensor(sa, 3);
  Tensor b = RandomTensor(sb, 4);
  EXPECT_TRUE(AllClose(Mul(a, b), Mul(b, a)));
}

TEST_P(BroadcastPropertyTest, SubIsAddOfNegation) {
  const auto& [sa, sb] = GetParam();
  Tensor a = RandomTensor(sa, 5);
  Tensor b = RandomTensor(sb, 6);
  EXPECT_TRUE(AllClose(Sub(a, b), Add(a, Neg(b))));
}

TEST_P(BroadcastPropertyTest, DistributiveLaw) {
  const auto& [sa, sb] = GetParam();
  Tensor a = RandomTensor(sa, 7);
  Tensor b = RandomTensor(sb, 8);
  Tensor c = RandomTensor(sb, 9);
  // a * (b + c) == a*b + a*c
  EXPECT_TRUE(AllClose(Mul(a, Add(b, c)), Add(Mul(a, b), Mul(a, c)), 1e-4f,
                       1e-3f));
}

TEST_P(BroadcastPropertyTest, ReduceToShapeIsTheAdjointOfBroadcast) {
  // <broadcast(b), g> == <b, reduce(g)> for every g of the output shape —
  // exactly the identity autograd relies on.
  const auto& [sa, sb] = GetParam();
  Tensor b = RandomTensor(sb, 10);
  const auto out_shape = BroadcastShapes(sa, sb);
  Tensor g = RandomTensor(out_shape, 11);
  // broadcast(b) realised by adding a zero tensor of the output shape.
  Tensor broadcast_b = Add(b, Tensor::Zeros(out_shape));
  const float lhs = SumAll(Mul(broadcast_b, g));
  const float rhs = SumAll(Mul(b, ReduceToShape(g, sb)));
  EXPECT_NEAR(lhs, rhs, 1e-2f + 1e-4f * std::fabs(lhs));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BroadcastPropertyTest,
    ::testing::Values(
        ShapePair{{4, 5}, {4, 5}},          // identical
        ShapePair{{4, 5}, {5}},             // suffix
        ShapePair{{4, 5}, {1}},             // scalar-ish
        ShapePair{{2, 3, 4}, {3, 4}},       // trailing matrix
        ShapePair{{2, 3, 4}, {3, 1}},       // inner broadcast
        ShapePair{{2, 1, 4}, {1, 3, 1}},    // two-sided broadcast
        ShapePair{{6}, {2, 3, 6}},          // left operand smaller
        ShapePair{{2, 3, 4, 5}, {4, 5}},    // rank-4
        ShapePair{{2, 3, 4, 1}, {4, 6}}));  // rank-4 inner expansion

class ReductionPropertyTest
    : public ::testing::TestWithParam<std::vector<int64_t>> {};

TEST_P(ReductionPropertyTest, SumOverAllAxesMatchesSumAll) {
  Tensor a = RandomTensor(GetParam(), 12);
  Tensor reduced = a;
  while (reduced.dim() > 0) reduced = Sum(reduced, 0);
  EXPECT_NEAR(reduced[0], SumAll(a), 1e-3f + 1e-4f * std::fabs(SumAll(a)));
}

TEST_P(ReductionPropertyTest, MeanTimesCountEqualsSum) {
  Tensor a = RandomTensor(GetParam(), 13);
  for (int64_t axis = 0; axis < a.dim(); ++axis) {
    Tensor mean = Mean(a, axis);
    Tensor sum = Sum(a, axis);
    EXPECT_TRUE(AllClose(MulScalar(mean, a.shape(axis)), sum, 1e-4f, 1e-4f))
        << "axis " << axis;
  }
}

TEST_P(ReductionPropertyTest, MaxIsAnUpperBoundAttained) {
  Tensor a = RandomTensor(GetParam(), 14);
  for (int64_t axis = 0; axis < a.dim(); ++axis) {
    Tensor max = Max(a, axis, /*keepdims=*/true);
    // max broadcast back >= a everywhere.
    Tensor diff = Sub(Add(max, Tensor::Zeros(a.shape())), a);
    for (int64_t i = 0; i < diff.size(); ++i) EXPECT_GE(diff[i], 0.0f);
  }
}

TEST_P(ReductionPropertyTest, SoftmaxInvariantToConstantShift) {
  Tensor a = RandomTensor(GetParam(), 15);
  for (int64_t axis = 0; axis < a.dim(); ++axis) {
    Tensor s1 = Softmax(a, axis);
    Tensor s2 = Softmax(AddScalar(a, 7.5f), axis);
    EXPECT_TRUE(AllClose(s1, s2, 1e-5f, 1e-4f)) << "axis " << axis;
  }
}

TEST_P(ReductionPropertyTest, SoftmaxSumsToOneAlongEveryAxis) {
  Tensor a = RandomTensor(GetParam(), 16);
  for (int64_t axis = 0; axis < a.dim(); ++axis) {
    Tensor s = Softmax(a, axis);
    Tensor sums = Sum(s, axis);
    for (int64_t i = 0; i < sums.size(); ++i) {
      EXPECT_NEAR(sums[i], 1.0f, 1e-4f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ReductionPropertyTest,
                         ::testing::Values(std::vector<int64_t>{7},
                                           std::vector<int64_t>{3, 5},
                                           std::vector<int64_t>{2, 3, 4},
                                           std::vector<int64_t>{2, 1, 5},
                                           std::vector<int64_t>{2, 3, 2, 3}));

class MatMulPropertyTest
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t>> {
};

TEST_P(MatMulPropertyTest, TransposeOfProductIsReversedProduct) {
  const auto& [m, k, n] = GetParam();
  Tensor a = RandomTensor({m, k}, 17);
  Tensor b = RandomTensor({k, n}, 18);
  // (AB)^T == B^T A^T
  EXPECT_TRUE(AllClose(Transpose(MatMul(a, b)),
                       MatMul(Transpose(b), Transpose(a)), 1e-4f, 1e-3f));
}

TEST_P(MatMulPropertyTest, TransFlagsMatchExplicitTransposes) {
  const auto& [m, k, n] = GetParam();
  Tensor at = RandomTensor({k, m}, 19);
  Tensor bt = RandomTensor({n, k}, 20);
  EXPECT_TRUE(AllClose(MatMul(at, bt, true, true),
                       MatMul(Transpose(at), Transpose(bt)), 1e-4f, 1e-3f));
}

TEST_P(MatMulPropertyTest, IdentityIsNeutral) {
  const auto& [m, k, n] = GetParam();
  (void)n;
  Tensor a = RandomTensor({m, k}, 21);
  Tensor eye({k, k});
  for (int64_t i = 0; i < k; ++i) eye.at({i, i}) = 1.0f;
  EXPECT_TRUE(AllClose(MatMul(a, eye), a, 1e-5f, 1e-5f));
}

TEST_P(MatMulPropertyTest, LinearInFirstArgument) {
  const auto& [m, k, n] = GetParam();
  Tensor a1 = RandomTensor({m, k}, 22);
  Tensor a2 = RandomTensor({m, k}, 23);
  Tensor b = RandomTensor({k, n}, 24);
  EXPECT_TRUE(AllClose(MatMul(Add(a1, a2), b),
                       Add(MatMul(a1, b), MatMul(a2, b)), 1e-3f, 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(Dims, MatMulPropertyTest,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(2, 3, 4),
                                           std::make_tuple(5, 1, 7),
                                           std::make_tuple(8, 16, 8),
                                           std::make_tuple(37, 24, 37)));

TEST(ConcatPropertyTest, ConcatThenSliceRecoversParts) {
  for (int64_t axis = 0; axis < 3; ++axis) {
    Tensor a = RandomTensor({3, 4, 5}, 25);
    Tensor b = RandomTensor({3, 4, 5}, 26);
    Tensor cat = Concat({a, b}, axis);
    EXPECT_TRUE(AllClose(Slice(cat, axis, 0, a.shape(axis)), a));
    EXPECT_TRUE(
        AllClose(Slice(cat, axis, a.shape(axis), b.shape(axis)), b));
  }
}

TEST(ClipPropertyTest, ClipIsIdempotent) {
  Tensor a = RandomTensor({100}, 27);
  Tensor once = Clip(a, -0.5f, 0.5f);
  EXPECT_TRUE(AllClose(Clip(once, -0.5f, 0.5f), once));
}

TEST(SigmoidPropertyTest, SymmetryAroundZero) {
  Tensor a = RandomTensor({200}, 28);
  Tensor s_pos = Sigmoid(a);
  Tensor s_neg = Sigmoid(Neg(a));
  // sigmoid(x) + sigmoid(-x) == 1
  Tensor sum = Add(s_pos, s_neg);
  for (int64_t i = 0; i < sum.size(); ++i) EXPECT_NEAR(sum[i], 1.0f, 1e-5f);
}

TEST(TanhPropertyTest, OddFunction) {
  Tensor a = RandomTensor({200}, 29);
  EXPECT_TRUE(AllClose(Tanh(Neg(a)), Neg(Tanh(a)), 1e-5f, 1e-5f));
}

TEST(ExpLogPropertyTest, LogOfExpIsIdentityInRange) {
  Rng rng(30);
  Tensor a = Tensor::Uniform({100}, -3.0f, 3.0f, &rng);
  EXPECT_TRUE(AllClose(Log(Exp(a)), a, 1e-4f, 1e-4f));
}

}  // namespace
}  // namespace elda
