#include <vector>

#include "gtest/gtest.h"
#include "tensor/tensor.h"

namespace elda {
namespace {

TEST(TensorTest, DefaultIsUndefined) {
  Tensor t;
  EXPECT_FALSE(t.defined());
  EXPECT_EQ(t.size(), 0);
  EXPECT_EQ(t.dim(), 0);
}

TEST(TensorTest, ZeroInitialisedConstruction) {
  Tensor t({2, 3});
  EXPECT_TRUE(t.defined());
  EXPECT_EQ(t.size(), 6);
  EXPECT_EQ(t.dim(), 2);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, ScalarHasRankZero) {
  Tensor s = Tensor::Scalar(3.5f);
  EXPECT_EQ(s.dim(), 0);
  EXPECT_EQ(s.size(), 1);
  EXPECT_EQ(s[0], 3.5f);
}

TEST(TensorTest, FullAndOnes) {
  Tensor f = Tensor::Full({4}, 2.5f);
  Tensor o = Tensor::Ones({4});
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(f[i], 2.5f);
    EXPECT_EQ(o[i], 1.0f);
  }
}

TEST(TensorTest, FromDataPreservesOrder) {
  Tensor t = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ((t.at({0, 0})), 1.0f);
  EXPECT_EQ((t.at({0, 1})), 2.0f);
  EXPECT_EQ((t.at({1, 0})), 3.0f);
  EXPECT_EQ((t.at({1, 1})), 4.0f);
}

TEST(TensorTest, CopyIsShallow) {
  Tensor a({3});
  Tensor b = a;
  b[0] = 7.0f;
  EXPECT_EQ(a[0], 7.0f);
}

TEST(TensorTest, CloneIsDeep) {
  Tensor a({3});
  Tensor b = a.Clone();
  b[0] = 7.0f;
  EXPECT_EQ(a[0], 0.0f);
}

TEST(TensorTest, ReshapeSharesStorage) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = a.Reshape({3, 2});
  EXPECT_EQ(b.dim(), 2);
  EXPECT_EQ(b.shape(0), 3);
  b[5] = 99.0f;
  EXPECT_EQ(a[5], 99.0f);
}

TEST(TensorTest, ReshapeInfersMinusOne) {
  Tensor a({4, 6});
  Tensor b = a.Reshape({2, -1});
  EXPECT_EQ(b.shape(1), 12);
  Tensor c = a.Reshape({-1});
  EXPECT_EQ(c.shape(0), 24);
}

TEST(TensorTest, NegativeAxisIndexing) {
  Tensor a({2, 3, 4});
  EXPECT_EQ(a.shape(-1), 4);
  EXPECT_EQ(a.shape(-2), 3);
  EXPECT_EQ(a.shape(-3), 2);
}

TEST(TensorTest, StridesAreRowMajor) {
  Tensor a({2, 3, 4});
  const std::vector<int64_t> strides = a.Strides();
  ASSERT_EQ(strides.size(), 3u);
  EXPECT_EQ(strides[0], 12);
  EXPECT_EQ(strides[1], 4);
  EXPECT_EQ(strides[2], 1);
}

TEST(TensorTest, FillSetsEveryElement) {
  Tensor a({5});
  a.Fill(-1.5f);
  for (int64_t i = 0; i < 5; ++i) EXPECT_EQ(a[i], -1.5f);
}

TEST(TensorTest, UniformFactoryRespectsBounds) {
  Rng rng(5);
  Tensor t = Tensor::Uniform({1000}, -0.5f, 0.5f, &rng);
  for (int64_t i = 0; i < t.size(); ++i) {
    EXPECT_GE(t[i], -0.5f);
    EXPECT_LT(t[i], 0.5f);
  }
}

TEST(TensorTest, NormalFactoryHasRequestedMoments) {
  Rng rng(6);
  Tensor t = Tensor::Normal({20000}, 1.0f, 0.5f, &rng);
  double sum = 0.0;
  for (int64_t i = 0; i < t.size(); ++i) sum += t[i];
  EXPECT_NEAR(sum / t.size(), 1.0, 0.02);
}

TEST(TensorTest, ShapeVolumeAndToString) {
  EXPECT_EQ(ShapeVolume({2, 3, 4}), 24);
  EXPECT_EQ(ShapeVolume({}), 1);
  EXPECT_EQ(ShapeToString({2, 3}), "[2, 3]");
}

TEST(TensorTest, DebugStringShowsShapeAndValues) {
  Tensor t = Tensor::FromData({2}, {1, 2});
  const std::string s = t.DebugString();
  EXPECT_NE(s.find("[2]"), std::string::npos);
  EXPECT_NE(s.find("1"), std::string::npos);
}

TEST(TensorDeathTest, FromDataSizeMismatchAborts) {
  EXPECT_DEATH(Tensor::FromData({2, 2}, {1, 2, 3}), "CHECK failed");
}

TEST(TensorDeathTest, BadReshapeAborts) {
  Tensor a({2, 3});
  EXPECT_DEATH(a.Reshape({4, 2}), "CHECK failed");
}

}  // namespace
}  // namespace elda
