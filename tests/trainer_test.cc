#include <cmath>

#include "data/pipeline.h"
#include "gtest/gtest.h"
#include "nn/gru.h"
#include "nn/linear.h"
#include "tensor/tensor_ops.h"
#include "train/trainer.h"

namespace elda {
namespace train {
namespace {

// A minimal model: GRU over x, linear head on the last state.
class TinyGruModel : public SequenceModel {
 public:
  TinyGruModel(int64_t features, int64_t hidden, uint64_t seed)
      : rng_(seed), gru_(features, hidden, &rng_), head_(hidden, 1, true,
                                                         &rng_) {
    RegisterSubmodule("gru", &gru_);
    RegisterSubmodule("head", &head_);
  }

  ag::Variable EncodeTerminal(const data::Batch& batch,
                              nn::ForwardContext*) const override {
    const int64_t b = batch.x.shape(0);
    const int64_t t = batch.x.shape(1);
    ag::Variable h = gru_.Forward(ag::Constant(batch.x));
    return ag::Reshape(ag::Slice(h, 1, t - 1, 1),
                       {b, gru_.cell().hidden_size()});
  }

  ag::Variable Readout(const ag::Variable& rep,
                       nn::ForwardContext*) const override {
    return ag::Reshape(head_.Forward(rep), {rep.value().shape(0)});
  }

  int64_t encoding_dim() const override { return gru_.cell().hidden_size(); }
  std::string name() const override { return "TinyGRU"; }

 private:
  Rng rng_;
  nn::Gru gru_;
  nn::Linear head_;
};

// A learnable separable dataset: label = 1 when the mean of feature 0 over
// time is positive.
std::vector<data::PreparedSample> SeparableData(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<data::PreparedSample> prepared;
  for (int64_t i = 0; i < n; ++i) {
    data::PreparedSample p;
    p.x = Tensor::Normal({6, 3}, 0.0f, 1.0f, &rng);
    const float shift = rng.Bernoulli(0.5) ? 1.2f : -1.2f;
    for (int64_t t = 0; t < 6; ++t) p.x.at({t, 0}) += shift;
    p.mask = Tensor::Ones({6, 3});
    p.delta = Tensor::Zeros({6, 3});
    p.mortality_label = shift > 0.0f ? 1.0f : 0.0f;
    p.los_gt7_label = p.mortality_label;
    prepared.push_back(std::move(p));
  }
  return prepared;
}

data::SplitIndices EvenSplit(int64_t n) {
  data::SplitIndices split;
  for (int64_t i = 0; i < n; ++i) {
    if (i % 10 == 8) {
      split.val.push_back(i);
    } else if (i % 10 == 9) {
      split.test.push_back(i);
    } else {
      split.train.push_back(i);
    }
  }
  return split;
}

TEST(TrainerTest, LearnsSeparableTask) {
  auto prepared = SeparableData(300, 1);
  auto split = EvenSplit(300);
  TinyGruModel model(3, 8, 2);
  TrainerConfig config;
  config.max_epochs = 8;
  config.batch_size = 32;
  config.learning_rate = 0.01f;
  Trainer trainer(config);
  TrainResult result =
      trainer.Train(&model, prepared, split, data::Task::kMortality);
  EXPECT_GT(result.test.auc_roc, 0.95);
  EXPECT_GT(result.test.auc_pr, 0.9);
  EXPECT_LT(result.test.bce, 0.5);
  EXPECT_EQ(result.num_parameters, model.NumParameters());
  EXPECT_GT(result.train_seconds_per_batch, 0.0);
  EXPECT_GT(result.predict_ms_per_sample, 0.0);
}

TEST(TrainerTest, EarlyStoppingRunsNoMoreThanMaxEpochs) {
  auto prepared = SeparableData(100, 3);
  auto split = EvenSplit(100);
  TinyGruModel model(3, 4, 4);
  TrainerConfig config;
  config.max_epochs = 3;
  config.batch_size = 32;
  Trainer trainer(config);
  TrainResult result =
      trainer.Train(&model, prepared, split, data::Task::kMortality);
  EXPECT_LE(result.epochs_run, 3);
  EXPECT_LE(result.best_epoch, result.epochs_run - 1);
}

TEST(TrainerTest, EvaluateIsDeterministicInEvalMode) {
  auto prepared = SeparableData(100, 5);
  auto split = EvenSplit(100);
  TinyGruModel model(3, 4, 6);
  EvalResult a = Trainer::Evaluate(&model, prepared, split.test,
                                   data::Task::kMortality);
  EvalResult b = Trainer::Evaluate(&model, prepared, split.test,
                                   data::Task::kMortality);
  EXPECT_DOUBLE_EQ(a.bce, b.bce);
  EXPECT_DOUBLE_EQ(a.auc_roc, b.auc_roc);
}

TEST(TrainerTest, PredictScoresAreProbabilitiesInOrder) {
  auto prepared = SeparableData(50, 7);
  TinyGruModel model(3, 4, 8);
  std::vector<int64_t> indices = {4, 2, 9};
  PredictResult result =
      Trainer::Predict(&model, prepared, indices, data::Task::kMortality);
  ASSERT_EQ(result.scores.size(), 3u);
  ASSERT_EQ(result.labels.size(), 3u);
  for (float s : result.scores) {
    EXPECT_GT(s, 0.0f);
    EXPECT_LT(s, 1.0f);
  }
  EXPECT_FLOAT_EQ(result.labels[0], prepared[4].mortality_label);
  // Order matches the indices: recomputing one at a time agrees.
  PredictResult single =
      Trainer::Predict(&model, prepared, {2}, data::Task::kMortality);
  EXPECT_FLOAT_EQ(result.scores[1], single.scores[0]);
}

TEST(TrainerTest, PredictIsInvariantToBatchSizeAndThreads) {
  auto prepared = SeparableData(70, 11);
  TinyGruModel model(3, 4, 12);
  std::vector<int64_t> indices;
  for (int64_t i = 0; i < 70; ++i) indices.push_back(i);

  InferenceOptions reference;
  reference.batch_size = 256;
  reference.parallel = false;
  PredictResult base = Trainer::Predict(&model, prepared, indices,
                                        data::Task::kMortality, reference);

  for (int64_t batch_size : {1, 7, 64}) {
    for (int64_t threads : {1, 4}) {
      InferenceOptions options;
      options.batch_size = batch_size;
      options.num_threads = threads;
      PredictResult got = Trainer::Predict(&model, prepared, indices,
                                           data::Task::kMortality, options);
      ASSERT_EQ(got.scores.size(), base.scores.size());
      for (size_t i = 0; i < base.scores.size(); ++i) {
        EXPECT_EQ(got.scores[i], base.scores[i])
            << "batch_size=" << batch_size << " threads=" << threads
            << " i=" << i;
      }
      EXPECT_EQ(got.labels, base.labels);
    }
  }
}

TEST(TrainerTest, EmptyTrainSplitReturnsStructuredStatus) {
  auto prepared = SeparableData(20, 13);
  data::SplitIndices split;  // train empty on purpose
  for (int64_t i = 0; i < 10; ++i) split.val.push_back(i);
  for (int64_t i = 10; i < 20; ++i) split.test.push_back(i);
  TinyGruModel model(3, 4, 14);
  Trainer trainer(TrainerConfig{});
  TrainResult result =
      trainer.Train(&model, prepared, split, data::Task::kMortality);
  EXPECT_EQ(result.status, health::TrainStatus::kEmptyTrainSplit);
  EXPECT_FALSE(result.status_message.empty());
  EXPECT_EQ(result.epochs_run, 0);
  // No division by zero leaked into the averages.
  EXPECT_EQ(result.train_seconds_per_batch, 0.0);
  EXPECT_FALSE(std::isnan(result.train_seconds_per_batch));
}

TEST(TrainerTest, RestoresBestEpochParameters) {
  // With a huge learning rate the model degrades after early epochs; the
  // returned test metrics must come from the best-validation snapshot, so
  // evaluating the model after Train() reproduces result.test exactly.
  auto prepared = SeparableData(200, 9);
  auto split = EvenSplit(200);
  TinyGruModel model(3, 6, 10);
  TrainerConfig config;
  config.max_epochs = 5;
  config.learning_rate = 0.05f;
  Trainer trainer(config);
  TrainResult result =
      trainer.Train(&model, prepared, split, data::Task::kMortality);
  EvalResult now = Trainer::Evaluate(&model, prepared, split.test,
                                     data::Task::kMortality);
  EXPECT_DOUBLE_EQ(result.test.auc_roc, now.auc_roc);
  EXPECT_DOUBLE_EQ(result.test.bce, now.bce);
}

}  // namespace
}  // namespace train
}  // namespace elda
