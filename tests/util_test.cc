#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "util/argparse.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace elda {
namespace {

TEST(ArgParserTest, TypedAssignmentAndProvided) {
  std::string name = "GRU";
  int64_t count = 10;
  double rate = 0.5;
  bool flag = false;
  bool untouched = true;
  util::ArgParser parser("prog", "test");
  parser.String("name", &name, "a string")
      .Int("count", &count, "an int")
      .Double("rate", &rate, "a double")
      .Bool("flag", &flag, "a switch")
      .Bool("untouched", &untouched, "left alone");
  const char* argv[] = {"prog", "--name", "LSTM", "--count=42", "--rate",
                        "1.25", "--flag"};
  parser.Parse(7, const_cast<char**>(argv));
  EXPECT_EQ(name, "LSTM");
  EXPECT_EQ(count, 42);
  EXPECT_EQ(rate, 1.25);
  EXPECT_TRUE(flag);
  EXPECT_TRUE(untouched);  // default preserved
  EXPECT_TRUE(parser.Provided("count"));
  EXPECT_FALSE(parser.Provided("untouched"));
}

TEST(ArgParserTest, ExplicitBoolValuesAndNegatives) {
  bool on = true;
  int64_t offset = 0;
  util::ArgParser parser("prog", "test");
  parser.Bool("on", &on, "switch").Int("offset", &offset, "signed");
  const char* argv[] = {"prog", "--on=false", "--offset", "-7"};
  parser.Parse(4, const_cast<char**>(argv));
  EXPECT_FALSE(on);
  EXPECT_EQ(offset, -7);
}

TEST(ArgParserTest, UsageListsEveryFlagWithDefault) {
  std::string path = "out.json";
  int64_t n = 5;
  util::ArgParser parser("prog", "A test program.");
  parser.String("path", &path, "output path").Int("n", &n, "how many");
  const std::string usage = parser.Usage();
  EXPECT_NE(usage.find("A test program."), std::string::npos);
  EXPECT_NE(usage.find("--path <string>"), std::string::npos);
  EXPECT_NE(usage.find("out.json"), std::string::npos);
  EXPECT_NE(usage.find("--n <int>"), std::string::npos);
  EXPECT_NE(usage.find("--help"), std::string::npos);
}

TEST(ArgParserDeathTest, UnknownFlagAndMalformedValueExitWithUsage) {
  int64_t n = 0;
  util::ArgParser parser("prog", "test");
  parser.Int("n", &n, "an int");
  const char* unknown[] = {"prog", "--bogus", "3"};
  EXPECT_EXIT(parser.Parse(3, const_cast<char**>(unknown)),
              ::testing::ExitedWithCode(2), "unknown flag --bogus");
  const char* malformed[] = {"prog", "--n", "3x"};
  EXPECT_EXIT(parser.Parse(3, const_cast<char**>(malformed)),
              ::testing::ExitedWithCode(2), "invalid int value");
}


TEST(RngTest, DeterministicAtFixedSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-2.5, 3.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 3.5);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(7);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  const int n = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, NormalWithParamsShiftsAndScales) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(19);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  rng.Shuffle(&v);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 10u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.Fork();
  // The child stream should not be a shifted copy of the parent stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += parent.Next() == child.Next();
  EXPECT_LT(same, 2);
}

TEST(FlagsTest, ParsesSeparateValueForm) {
  const char* argv[] = {"prog", "--epochs", "12"};
  Flags flags(3, const_cast<char**>(argv), {"epochs"});
  EXPECT_EQ(flags.GetInt("epochs", 0), 12);
}

TEST(FlagsTest, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--lr=0.05"};
  Flags flags(2, const_cast<char**>(argv), {"lr"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("lr", 0.0), 0.05);
}

TEST(FlagsTest, BareSwitchIsTrue) {
  const char* argv[] = {"prog", "--full"};
  Flags flags(2, const_cast<char**>(argv), {"full"});
  EXPECT_TRUE(flags.GetBool("full", false));
}

TEST(FlagsTest, AbsentFlagUsesDefault) {
  const char* argv[] = {"prog"};
  Flags flags(1, const_cast<char**>(argv), {"epochs"});
  EXPECT_EQ(flags.GetInt("epochs", 5), 5);
  EXPECT_EQ(flags.GetString("epochs", "x"), "x");
  EXPECT_FALSE(flags.Has("epochs"));
}

TEST(TableTest, AlignsColumns) {
  TablePrinter table({"model", "auc"});
  table.AddRow({"GRU", "0.81"});
  table.AddRow({"ELDA-Net", "0.86"});
  const std::string s = table.ToString();
  EXPECT_NE(s.find("model"), std::string::npos);
  EXPECT_NE(s.find("ELDA-Net  0.86"), std::string::npos);
}

TEST(TableTest, NumFormatsAndHandlesNan) {
  EXPECT_EQ(TablePrinter::Num(0.12345, 3), "0.123");
  EXPECT_EQ(TablePrinter::Num(std::nan(""), 3), "-");
}

TEST(StopwatchTest, MeasuresNonNegativeTime) {
  Stopwatch sw;
  double x = 0.0;
  for (int i = 0; i < 1000; ++i) x += i;
  (void)x;
  EXPECT_GE(sw.Seconds(), 0.0);
  EXPECT_GE(sw.Milliseconds(), sw.Seconds());
}

}  // namespace
}  // namespace elda
